#include "src/net/headers.h"

namespace nezha::net {

void EthernetHeader::serialize(ByteWriter& w) const {
  w.bytes(dst.bytes());
  w.bytes(src.bytes());
  w.u16(ethertype);
}

EthernetHeader EthernetHeader::parse(ByteReader& r) {
  EthernetHeader h;
  std::array<std::uint8_t, 6> mac{};
  auto d = r.bytes(6);
  if (d.size() == 6) std::copy(d.begin(), d.end(), mac.begin());
  h.dst = MacAddr(mac);
  d = r.bytes(6);
  if (d.size() == 6) std::copy(d.begin(), d.end(), mac.begin());
  h.src = MacAddr(mac);
  h.ethertype = r.u16();
  return h;
}

void Ipv4Header::serialize(ByteWriter& w) const {
  std::vector<std::uint8_t> hdr;
  hdr.reserve(kSize);
  ByteWriter hw(hdr);
  hw.u8(0x45);  // version 4, IHL 5
  hw.u8(dscp);
  hw.u16(total_length);
  hw.u16(identification);
  hw.u16(0);  // flags/fragment offset: never fragmented in the simulator
  hw.u8(ttl);
  hw.u8(static_cast<std::uint8_t>(protocol));
  hw.u16(0);  // checksum placeholder
  hw.u32(src.value());
  hw.u32(dst.value());
  const std::uint16_t csum = internet_checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(csum >> 8);
  hdr[11] = static_cast<std::uint8_t>(csum);
  w.bytes(hdr);
}

Ipv4Header Ipv4Header::parse(ByteReader& r) {
  Ipv4Header h;
  r.u8();  // version/IHL
  h.dscp = r.u8();
  h.total_length = r.u16();
  h.identification = r.u16();
  r.u16();  // flags/frag
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  r.u16();  // checksum (verified separately when needed)
  h.src = Ipv4Addr(r.u32());
  h.dst = Ipv4Addr(r.u32());
  return h;
}

void UdpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum optional for IPv4; the simulator leaves it zero
}

UdpHeader UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  r.u16();  // checksum
  return h;
}

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t b = 0;
  if (fin) b |= 0x01;
  if (syn) b |= 0x02;
  if (rst) b |= 0x04;
  if (psh) b |= 0x08;
  if (ack) b |= 0x10;
  return b;
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.fin = b & 0x01;
  f.syn = b & 0x02;
  f.rst = b & 0x04;
  f.psh = b & 0x08;
  f.ack = b & 0x10;
  return f;
}

void TcpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(flags.to_byte());
  w.u16(window);
  w.u16(0);  // checksum (not modeled)
  w.u16(0);  // urgent pointer
}

TcpHeader TcpHeader::parse(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  r.u8();  // data offset
  h.flags = TcpFlags::from_byte(r.u8());
  h.window = r.u16();
  r.u16();  // checksum
  r.u16();  // urgent
  return h;
}

void VxlanHeader::serialize(ByteWriter& w) const {
  w.u8(0x08);  // I flag set: VNI valid
  w.u8(0);
  w.u16(0);
  w.u32(vni << 8);  // 24-bit VNI + reserved byte
}

VxlanHeader VxlanHeader::parse(ByteReader& r) {
  VxlanHeader h;
  r.u8();
  r.u8();
  r.u16();
  h.vni = r.u32() >> 8;
  return h;
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace nezha::net
