#include "src/net/packet.h"

namespace nezha::net {

std::size_t InnerFrame::wire_size() const {
  const std::size_t l4 = (ft.proto == IpProto::kTcp) ? TcpHeader::kSize
                                                     : UdpHeader::kSize;
  return EthernetHeader::kSize + Ipv4Header::kSize + l4 + payload_len;
}

void Packet::encap(Ipv4Addr outer_src_ip, MacAddr outer_src_mac,
                   Ipv4Addr outer_dst_ip, MacAddr outer_dst_mac) {
  Overlay o;
  o.src_mac = outer_src_mac;
  o.dst_mac = outer_dst_mac;
  o.src_ip = outer_src_ip;
  o.dst_ip = outer_dst_ip;
  o.vni = vpc_id & 0xffffff;
  // Entropy port in the IANA-suggested ephemeral range, derived from the
  // inner flow so a flow's packets take one underlay ECMP path.
  o.src_port = static_cast<std::uint16_t>(
      0xc000 | (flow_hash(inner.ft) & 0x3fff));
  overlay = o;
}

std::optional<Overlay> Packet::decap() {
  auto removed = overlay;
  overlay.reset();
  carrier.reset();
  return removed;
}

std::size_t Packet::wire_size() const {
  std::size_t n = inner.wire_size();
  if (carrier) n += carrier->wire_size();
  if (overlay) n += Overlay::kSize;
  return n;
}

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());
  ByteWriter w(out);

  // Build inner frame bytes first so outer lengths are exact.
  std::vector<std::uint8_t> inner_bytes;
  {
    ByteWriter iw(inner_bytes);
    EthernetHeader eth{inner.dst_mac, inner.src_mac, kEtherTypeIpv4};
    eth.serialize(iw);
    Ipv4Header ip;
    ip.protocol = inner.ft.proto;
    ip.src = inner.ft.src_ip;
    ip.dst = inner.ft.dst_ip;
    const std::size_t l4 = (inner.ft.proto == IpProto::kTcp)
                               ? TcpHeader::kSize
                               : UdpHeader::kSize;
    ip.total_length =
        static_cast<std::uint16_t>(Ipv4Header::kSize + l4 + inner.payload_len);
    ip.serialize(iw);
    if (inner.ft.proto == IpProto::kTcp) {
      TcpHeader tcp;
      tcp.src_port = inner.ft.src_port;
      tcp.dst_port = inner.ft.dst_port;
      tcp.seq = inner.seq;
      tcp.ack = inner.ack_no;
      tcp.flags = inner.tcp_flags;
      tcp.serialize(iw);
    } else {
      UdpHeader udp;
      udp.src_port = inner.ft.src_port;
      udp.dst_port = inner.ft.dst_port;
      udp.length =
          static_cast<std::uint16_t>(UdpHeader::kSize + inner.payload_len);
      udp.serialize(iw);
    }
    iw.zeros(inner.payload_len);
  }

  if (overlay) {
    std::size_t shim = carrier ? carrier->wire_size() : 0;
    EthernetHeader eth{overlay->dst_mac, overlay->src_mac, kEtherTypeIpv4};
    eth.serialize(w);
    Ipv4Header ip;
    ip.protocol = IpProto::kUdp;
    ip.src = overlay->src_ip;
    ip.dst = overlay->dst_ip;
    ip.total_length = static_cast<std::uint16_t>(
        Ipv4Header::kSize + UdpHeader::kSize + VxlanHeader::kSize + shim +
        inner_bytes.size());
    ip.serialize(w);
    UdpHeader udp;
    udp.src_port = overlay->src_port;
    udp.dst_port = kVxlanUdpPort;
    udp.length = static_cast<std::uint16_t>(UdpHeader::kSize +
                                            VxlanHeader::kSize + shim +
                                            inner_bytes.size());
    udp.serialize(w);
    VxlanHeader vxlan{overlay->vni};
    vxlan.serialize(w);
    if (carrier) carrier->serialize(w);
  }
  w.bytes(inner_bytes);
  return out;
}

namespace {

common::Result<InnerFrame> parse_inner(ByteReader& r) {
  InnerFrame in;
  EthernetHeader eth = EthernetHeader::parse(r);
  in.dst_mac = eth.dst;
  in.src_mac = eth.src;
  Ipv4Header ip = Ipv4Header::parse(r);
  in.ft.proto = ip.protocol;
  in.ft.src_ip = ip.src;
  in.ft.dst_ip = ip.dst;
  if (ip.protocol == IpProto::kTcp) {
    TcpHeader tcp = TcpHeader::parse(r);
    in.ft.src_port = tcp.src_port;
    in.ft.dst_port = tcp.dst_port;
    in.seq = tcp.seq;
    in.ack_no = tcp.ack;
    in.tcp_flags = tcp.flags;
    in.payload_len = static_cast<std::uint16_t>(
        ip.total_length - Ipv4Header::kSize - TcpHeader::kSize);
  } else if (ip.protocol == IpProto::kUdp) {
    UdpHeader udp = UdpHeader::parse(r);
    in.ft.src_port = udp.src_port;
    in.ft.dst_port = udp.dst_port;
    in.payload_len = static_cast<std::uint16_t>(
        ip.total_length - Ipv4Header::kSize - UdpHeader::kSize);
  } else {
    return common::make_error("packet: unsupported inner protocol");
  }
  r.skip(in.payload_len);
  if (!r.ok()) return common::make_error("packet: truncated inner frame");
  return in;
}

}  // namespace

common::Result<Packet> Packet::parse(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  Packet pkt;

  // Peek: an encapsulated packet has outer IPv4 proto UDP dst-port 4789.
  // We parse optimistically as overlay; if the outer UDP port is not VXLAN,
  // re-parse the whole buffer as a bare inner frame.
  if (bytes.size() >= Overlay::kSize + EthernetHeader::kSize) {
    ByteReader probe(bytes);
    EthernetHeader oeth = EthernetHeader::parse(probe);
    Ipv4Header oip = Ipv4Header::parse(probe);
    if (oip.protocol == IpProto::kUdp) {
      UdpHeader oudp = UdpHeader::parse(probe);
      if (oudp.dst_port == kVxlanUdpPort) {
        VxlanHeader vxlan = VxlanHeader::parse(probe);
        Overlay o;
        o.dst_mac = oeth.dst;
        o.src_mac = oeth.src;
        o.src_ip = oip.src;
        o.dst_ip = oip.dst;
        o.src_port = oudp.src_port;
        o.vni = vxlan.vni;
        pkt.overlay = o;
        pkt.vpc_id = vxlan.vni;
        // Optional carrier shim: detect by version byte.
        const std::size_t shim_pos = probe.position();
        if (probe.remaining() >= CarrierHeader::kBaseSize &&
            bytes[shim_pos] == CarrierHeader::kVersion) {
          auto carrier = CarrierHeader::parse(probe);
          if (carrier.ok()) {
            pkt.carrier = carrier.value();
          } else {
            return common::make_error(carrier.error().message);
          }
        }
        auto inner = parse_inner(probe);
        if (!inner.ok()) return common::make_error(inner.error().message);
        pkt.inner = inner.value();
        return pkt;
      }
    }
  }
  auto inner = parse_inner(r);
  if (!inner.ok()) return common::make_error(inner.error().message);
  pkt.inner = inner.value();
  return pkt;
}

std::string Packet::to_string() const {
  std::string s = inner.ft.to_string();
  if (inner.ft.proto == IpProto::kTcp) {
    s += " [";
    if (inner.tcp_flags.syn) s += "S";
    if (inner.tcp_flags.ack) s += "A";
    if (inner.tcp_flags.fin) s += "F";
    if (inner.tcp_flags.rst) s += "R";
    s += "]";
  }
  if (overlay) {
    s += " @" + overlay->src_ip.to_string() + "->" +
         overlay->dst_ip.to_string() + " vni=" + std::to_string(overlay->vni);
  }
  if (carrier) s += " +carrier(" + std::to_string(carrier->tlv_count()) + ")";
  return s;
}

Packet make_tcp_packet(const FiveTuple& ft, TcpFlags flags,
                       std::uint16_t payload_len, std::uint32_t vpc_id) {
  Packet pkt;
  pkt.inner.ft = ft;
  pkt.inner.ft.proto = IpProto::kTcp;
  pkt.inner.tcp_flags = flags;
  pkt.inner.payload_len = payload_len;
  pkt.inner.src_mac = MacAddr(0x020000000001ULL + ft.src_ip.value());
  pkt.inner.dst_mac = MacAddr(0x020000000001ULL + ft.dst_ip.value());
  pkt.vpc_id = vpc_id;
  return pkt;
}

Packet make_udp_packet(const FiveTuple& ft, std::uint16_t payload_len,
                       std::uint32_t vpc_id) {
  Packet pkt;
  pkt.inner.ft = ft;
  pkt.inner.ft.proto = IpProto::kUdp;
  pkt.inner.payload_len = payload_len;
  pkt.inner.src_mac = MacAddr(0x020000000001ULL + ft.src_ip.value());
  pkt.inner.dst_mac = MacAddr(0x020000000001ULL + ft.dst_ip.value());
  pkt.vpc_id = vpc_id;
  return pkt;
}

}  // namespace nezha::net
