// Transport 5-tuple: the flow identity used throughout the vSwitch pipeline
// and by Nezha's hash-based FE load balancing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/net/addr.h"

namespace nezha::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  /// The reverse-direction tuple of the same flow.
  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  /// Direction-insensitive canonical form: the lexicographically smaller of
  /// (this, reversed()) on (src_ip, dst_ip, src_port, dst_port).
  /// Bidirectional flows of a session share one canonical tuple, which keys
  /// the session table. Inline: it runs per packet per hop (session keying,
  /// ECMP) and the orientation test is a couple of compares.
  FiveTuple canonical() const {
    if (src_ip.value() != dst_ip.value()) {
      return src_ip.value() < dst_ip.value() ? *this : reversed();
    }
    return src_port <= dst_port ? *this : reversed();
  }

  /// True when this tuple is already in canonical orientation.
  bool is_canonical() const;

  std::string to_string() const;

  auto operator<=>(const FiveTuple&) const = default;
};

/// Stable 64-bit flow hash (used for FE selection; must be deterministic
/// across runs so tests can assert placement). Inline: it runs several times
/// per simulated packet (session index, FE pick, ECMP, encap entropy) and
/// the call overhead was measurable. The mixing constants are part of the
/// simulation's determinism contract — changing them moves FE/ECMP placement
/// and therefore the golden fingerprint.
inline std::uint64_t flow_hash_mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t flow_hash(const FiveTuple& ft, std::uint64_t seed = 0) {
  std::uint64_t h = seed ^ 0x5851f42d4c957f2dULL;
  h = flow_hash_mix64(h ^ ft.src_ip.value());
  h = flow_hash_mix64(h ^ ft.dst_ip.value());
  h = flow_hash_mix64(h ^ (static_cast<std::uint64_t>(ft.src_port) << 16 |
                           ft.dst_port));
  h = flow_hash_mix64(h ^ static_cast<std::uint64_t>(ft.proto));
  return h;
}

}  // namespace nezha::net

template <>
struct std::hash<nezha::net::FiveTuple> {
  std::size_t operator()(const nezha::net::FiveTuple& ft) const noexcept {
    return static_cast<std::size_t>(nezha::net::flow_hash(ft));
  }
};
