// Transport 5-tuple: the flow identity used throughout the vSwitch pipeline
// and by Nezha's hash-based FE load balancing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/net/addr.h"

namespace nezha::net {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::kTcp;

  /// The reverse-direction tuple of the same flow.
  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  /// Direction-insensitive canonical form: the lexicographically smaller of
  /// (this, reversed()). Bidirectional flows of a session share one
  /// canonical tuple, which keys the session table.
  FiveTuple canonical() const;

  /// True when this tuple is already in canonical orientation.
  bool is_canonical() const;

  std::string to_string() const;

  auto operator<=>(const FiveTuple&) const = default;
};

/// Stable 64-bit flow hash (used for FE selection; must be deterministic
/// across runs so tests can assert placement).
std::uint64_t flow_hash(const FiveTuple& ft, std::uint64_t seed = 0);

}  // namespace nezha::net

template <>
struct std::hash<nezha::net::FiveTuple> {
  std::size_t operator()(const nezha::net::FiveTuple& ft) const noexcept {
    return static_cast<std::size_t>(nezha::net::flow_hash(ft));
  }
};
