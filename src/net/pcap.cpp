#include "src/net/pcap.h"

#include <memory>

namespace nezha::net {
namespace {

void put_u16le(std::ofstream& out, std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff),
                     static_cast<char>((v >> 8) & 0xff)};
  out.write(b, 2);
}

void put_u32le(std::ofstream& out, std::uint32_t v) {
  const char b[4] = {static_cast<char>(v & 0xff),
                     static_cast<char>((v >> 8) & 0xff),
                     static_cast<char>((v >> 16) & 0xff),
                     static_cast<char>((v >> 24) & 0xff)};
  out.write(b, 4);
}

}  // namespace

common::Result<PcapWriter> PcapWriter::open(const std::string& path) {
  auto out = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::trunc);
  if (!out->is_open()) {
    return common::make_error("pcap: cannot open " + path);
  }
  // Global header: magic (microsecond timestamps), version 2.4,
  // thiszone 0, sigfigs 0, snaplen 65535, linktype 1 (Ethernet).
  put_u32le(*out, 0xa1b2c3d4u);
  put_u16le(*out, 2);
  put_u16le(*out, 4);
  put_u32le(*out, 0);
  put_u32le(*out, 0);
  put_u32le(*out, 65535);
  put_u32le(*out, 1);
  return PcapWriter(std::move(out));
}

void PcapWriter::write(const Packet& pkt, common::TimePoint at) {
  write_bytes(pkt.serialize(), at);
}

void PcapWriter::write_bytes(std::span<const std::uint8_t> frame,
                             common::TimePoint at) {
  const auto ts_sec = static_cast<std::uint32_t>(at / common::kSecond);
  const auto ts_usec = static_cast<std::uint32_t>(
      (at % common::kSecond) / common::kMicrosecond);
  put_u32le(*out_, ts_sec);
  put_u32le(*out_, ts_usec);
  put_u32le(*out_, static_cast<std::uint32_t>(frame.size()));
  put_u32le(*out_, static_cast<std::uint32_t>(frame.size()));
  out_->write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  ++packets_;
}

}  // namespace nezha::net
