#include "src/net/five_tuple.h"

#include <cstdio>

namespace nezha::net {

bool FiveTuple::is_canonical() const { return *this == canonical(); }

std::string FiveTuple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s:%u->%s:%u/%u", src_ip.to_string().c_str(),
                src_port, dst_ip.to_string().c_str(), dst_port,
                static_cast<unsigned>(proto));
  return buf;
}

}  // namespace nezha::net
