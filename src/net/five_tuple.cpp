#include "src/net/five_tuple.h"

#include <cstdio>
#include <tuple>

namespace nezha::net {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

auto key(const FiveTuple& ft) {
  return std::make_tuple(ft.src_ip.value(), ft.dst_ip.value(), ft.src_port,
                         ft.dst_port);
}

}  // namespace

FiveTuple FiveTuple::canonical() const {
  const FiveTuple rev = reversed();
  return key(*this) <= key(rev) ? *this : rev;
}

bool FiveTuple::is_canonical() const { return *this == canonical(); }

std::string FiveTuple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s:%u->%s:%u/%u", src_ip.to_string().c_str(),
                src_port, dst_ip.to_string().c_str(), dst_port,
                static_cast<unsigned>(proto));
  return buf;
}

std::uint64_t flow_hash(const FiveTuple& ft, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0x5851f42d4c957f2dULL;
  h = mix64(h ^ ft.src_ip.value());
  h = mix64(h ^ ft.dst_ip.value());
  h = mix64(h ^ (static_cast<std::uint64_t>(ft.src_port) << 16 |
                 ft.dst_port));
  h = mix64(h ^ static_cast<std::uint64_t>(ft.proto));
  return h;
}

}  // namespace nezha::net
