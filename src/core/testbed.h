// Testbed: wires an event loop, topology, underlay network, gateway map,
// a fleet of vSwitches, the Nezha controller and the health monitor into a
// ready-to-drive cluster — the programmatic equivalent of the paper's
// small-scale testbed (§6.1). Used by integration tests, benches and the
// examples.
//
// Sharded mode (DESIGN.md §13): with config.shards > 1 the fleet is
// partitioned per rack into shards, each owning its own EventLoop and
// Network; run_for() drives them in lockstep epochs through a
// sim::ShardedEngine, optionally on config.threads worker threads.
// shards = 1 (the default) is exactly the classic single-loop testbed —
// same objects, same code path, bit-identical behavior.
//
// Thread-affinity rules for sharded runs (enforced where cheap, documented
// here otherwise):
//  * Control-plane workflows (controller offload/scale/failover pushes,
//    monitor crash callbacks) mutate vSwitches across shards. With
//    config.shard_fences (the default) the Testbed routes them through the
//    engine's epoch-fenced quiesce protocol (DESIGN.md §15): each runs at
//    an epoch barrier with every worker parked, in deterministic (due,
//    seq) order — so offload activation, churn and failover are safe and
//    thread-invariant at ANY thread count. With fences disabled the
//    legacy rule applies: such workflows must run at threads == 1 or
//    while the bed is quiescent.
//  * Workload callbacks (CpsWorkload) execute on the shard threads of
//    their endpoint vSwitches; CpsWorkload therefore requires both of its
//    endpoints in the same shard (checked in its constructor).
//  * Pure packet traffic — including BE→FE offload detours — may cross
//    shards freely at any thread count; that is what the token rings are
//    for.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/core/controller.h"
#include "src/core/link_prober.h"
#include "src/core/monitor.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/shard.h"
#include "src/sim/topology.h"
#include "src/tables/vnic_server_map.h"
#include "src/telemetry/hub.h"
#include "src/vswitch/vswitch.h"

namespace nezha::core {

struct TestbedConfig {
  std::size_t num_vswitches = 16;
  sim::TopologyConfig topology;
  sim::NetworkConfig network;
  vswitch::VSwitchConfig vswitch;
  ControllerConfig controller;
  MonitorConfig monitor;
  /// Observability plane. When `telemetry.enabled` the Testbed builds a
  /// telemetry::Hub, hands it to the network / every vSwitch / the
  /// controller / the monitor, registers the standard gauge set
  /// (per-vSwitch CPU utilization, session-table occupancy and port queue
  /// depth; per-fabric-link queue depth; network delivery counters) and
  /// starts the periodic sampler. NOTE: a running sampler re-arms forever,
  /// so drive a telemetry-enabled testbed with run_for(), not loop().run().
  /// Sharded beds get one hub per shard (disjoint packet-id streams);
  /// dump_merged_trace() produces the deterministic combined dump.
  telemetry::TelemetryConfig telemetry;
  /// Sharded engine: number of rack-aligned shard domains (clamped to the
  /// rack count). 1 = classic single-loop testbed, bit-identical to the
  /// pre-shard code path.
  std::size_t shards = 1;
  /// Worker threads run_for() uses to drive the shards (clamped to
  /// [1, shards]). The simulation result is identical for every value.
  int threads = 1;
  /// Capacity of each (src, dst) cross-shard token ring.
  std::size_t shard_ring_capacity = 1024;
  /// Route cross-shard control work (controller continuations, monitor
  /// crash callbacks) through the engine's fenced-section protocol so the
  /// whole lifecycle runs thread-safely at any thread count. Only
  /// meaningful when shards > 1; disabling reverts to the legacy
  /// "control at threads == 1" contract (ablation knob).
  bool shard_fences = true;
  /// Sparse-epoch fast-forward in the sharded engine (ablation knob;
  /// outcome-invariant either way).
  bool shard_fast_forward = true;
};

/// TestbedConfig preset for the fleet-scale 2-tier Clos testbed: enough
/// leaves for `num_vswitches` servers (plus the monitor node) at
/// `hosts_per_leaf` per rack, ECMP across `num_spines` spines. Small racks
/// (default 4 hosts) force a min-4-FE pool to spill across leaves, so
/// BE↔FE offload traffic competes for spine bandwidth.
TestbedConfig make_clos_testbed_config(std::size_t num_vswitches,
                                       std::uint32_t hosts_per_leaf = 4,
                                       std::uint32_t num_spines = 4,
                                       double oversubscription = 2.0);

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return *network_; }
  tables::VnicServerMap& gateway() { return gateway_; }
  Controller& controller() { return *controller_; }
  HealthMonitor& monitor() { return *monitor_; }
  LinkProber& link_prober() { return *link_prober_; }
  /// Null when config.telemetry.enabled was false; shard 0's hub otherwise.
  telemetry::Hub* telemetry() { return telemetry_.get(); }

  // --- sharding ---
  std::size_t shard_count() const { return num_shards_; }
  /// Null unless shard_count() > 1.
  sim::ShardedEngine* engine() { return engine_.get(); }
  std::uint32_t shard_of_node(sim::NodeId id) const {
    return shard_map_.shard_of_rack(topology_.tor_of(id));
  }
  sim::EventLoop& loop_of_shard(std::uint32_t s) {
    return s == 0 ? loop_ : *extra_loops_[s - 1];
  }
  sim::Network& network_of_shard(std::uint32_t s) {
    return s == 0 ? *network_ : *extra_networks_[s - 1];
  }
  /// The loop/network that own vSwitch i (== loop()/network() at shards=1).
  sim::EventLoop& loop_of(std::size_t i) {
    return loop_of_shard(shard_of_node(static_cast<sim::NodeId>(i)));
  }
  sim::Network& network_of(std::size_t i) {
    return network_of_shard(shard_of_node(static_cast<sim::NodeId>(i)));
  }
  telemetry::Hub* telemetry_of_shard(std::uint32_t s) {
    if (telemetry_ == nullptr) return nullptr;
    return s == 0 ? telemetry_.get() : extra_hubs_[s - 1].get();
  }
  /// Worker threads used by run_for (sharded beds only; result-invariant).
  int threads() const { return threads_; }
  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }

  /// Fleet-wide network counter sums (single network's counters at
  /// shards = 1). Quiescent reads only on threaded runs.
  struct NetTotals {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t exported = 0;
    std::uint64_t imported = 0;
    std::uint64_t total_bytes = 0;
    std::vector<std::uint64_t> spine_bytes;
  };
  NetTotals net_totals() const;

  /// Deterministic combined flight-recorder dump across all shard hubs
  /// (== telemetry()->dump_trace() ordering at shards = 1). No-op without
  /// telemetry.
  void dump_merged_trace(std::ostream& os) const;

  /// True when cross-shard control runs through the fence protocol
  /// (shards > 1 and config.shard_fences).
  bool fenced_control() const { return fenced_control_; }

  /// Schedules a control-plane action at sim-time `at`: a fenced section
  /// under fenced_control(), a plain shard-0 loop event otherwise. The
  /// hook scenario drivers (FleetScenario churn, chaos scripts) use to
  /// fire mid-window control that may touch any shard.
  void schedule_control(common::TimePoint at, std::function<void()> fn);

  /// Starts §C.1 mutual probing on every (BE, FE) path of an offloaded
  /// vNIC; link failures route to Controller::handle_link_failure.
  void watch_fe_links(tables::VnicId id);

  std::size_t size() const { return switches_.size(); }
  vswitch::VSwitch& vswitch(std::size_t i) { return *switches_.at(i); }

  /// Underlay IP assigned to vSwitch i (10.200.x.y scheme).
  static net::Ipv4Addr underlay_ip(std::size_t i) {
    return net::Ipv4Addr(10, 200, static_cast<std::uint8_t>(i / 250),
                         static_cast<std::uint8_t>(i % 250 + 1));
  }

  /// Creates a vNIC on vSwitch i and registers it with the controller
  /// (publishing its placement at the gateway). Returns the hosting switch.
  vswitch::VSwitch& add_vnic(std::size_t i, const vswitch::VnicConfig& config,
                             bool stateful_decap = false);

  /// Convenience: watch every vSwitch that currently hosts FEs.
  void watch_fe_hosts();

  void run_for(common::Duration d) {
    if (engine_ != nullptr) {
      engine_->run_until(loop_.now() + d, threads_);
    } else {
      loop_.run_until(loop_.now() + d);
    }
  }

 private:
  void wire_telemetry(const telemetry::TelemetryConfig& cfg);
  void wire_shard_telemetry(std::uint32_t shard, telemetry::Hub* hub);

  sim::EventLoop loop_;
  tables::VnicServerMap gateway_;
  sim::Topology topology_;
  sim::ShardMap shard_map_;
  std::size_t num_shards_ = 1;
  int threads_ = 1;
  bool fenced_control_ = false;
  std::unique_ptr<sim::Network> network_;
  // Shards 1..K-1 (shard 0 reuses loop_/network_ so the single-shard
  // testbed is object-for-object the pre-shard one).
  std::vector<std::unique_ptr<sim::EventLoop>> extra_loops_;
  std::vector<std::unique_ptr<sim::Network>> extra_networks_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<std::unique_ptr<vswitch::VSwitch>> switches_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<HealthMonitor> monitor_;
  std::unique_ptr<LinkProber> link_prober_;
  std::unique_ptr<telemetry::Hub> telemetry_;
  std::vector<std::unique_ptr<telemetry::Hub>> extra_hubs_;
  /// SLO probe-loss lag, in sampler ticks: how long probe replies may
  /// trail probe sends before counting as loss (derived from the monitor
  /// probe timeout and the sampler period in the constructor).
  std::uint32_t slo_probe_lag_ticks_ = 4;
};

}  // namespace nezha::core
