// Testbed: wires an event loop, topology, underlay network, gateway map,
// a fleet of vSwitches, the Nezha controller and the health monitor into a
// ready-to-drive cluster — the programmatic equivalent of the paper's
// small-scale testbed (§6.1). Used by integration tests, benches and the
// examples.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/controller.h"
#include "src/core/link_prober.h"
#include "src/core/monitor.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/topology.h"
#include "src/tables/vnic_server_map.h"
#include "src/telemetry/hub.h"
#include "src/vswitch/vswitch.h"

namespace nezha::core {

struct TestbedConfig {
  std::size_t num_vswitches = 16;
  sim::TopologyConfig topology;
  sim::NetworkConfig network;
  vswitch::VSwitchConfig vswitch;
  ControllerConfig controller;
  MonitorConfig monitor;
  /// Observability plane. When `telemetry.enabled` the Testbed builds a
  /// telemetry::Hub, hands it to the network / every vSwitch / the
  /// controller / the monitor, registers the standard gauge set
  /// (per-vSwitch CPU utilization, session-table occupancy and port queue
  /// depth; per-fabric-link queue depth; network delivery counters) and
  /// starts the periodic sampler. NOTE: a running sampler re-arms forever,
  /// so drive a telemetry-enabled testbed with run_for(), not loop().run().
  telemetry::TelemetryConfig telemetry;
};

/// TestbedConfig preset for the fleet-scale 2-tier Clos testbed: enough
/// leaves for `num_vswitches` servers (plus the monitor node) at
/// `hosts_per_leaf` per rack, ECMP across `num_spines` spines. Small racks
/// (default 4 hosts) force a min-4-FE pool to spill across leaves, so
/// BE↔FE offload traffic competes for spine bandwidth.
TestbedConfig make_clos_testbed_config(std::size_t num_vswitches,
                                       std::uint32_t hosts_per_leaf = 4,
                                       std::uint32_t num_spines = 4,
                                       double oversubscription = 2.0);

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return *network_; }
  tables::VnicServerMap& gateway() { return gateway_; }
  Controller& controller() { return *controller_; }
  HealthMonitor& monitor() { return *monitor_; }
  LinkProber& link_prober() { return *link_prober_; }
  /// Null when config.telemetry.enabled was false.
  telemetry::Hub* telemetry() { return telemetry_.get(); }

  /// Starts §C.1 mutual probing on every (BE, FE) path of an offloaded
  /// vNIC; link failures route to Controller::handle_link_failure.
  void watch_fe_links(tables::VnicId id);

  std::size_t size() const { return switches_.size(); }
  vswitch::VSwitch& vswitch(std::size_t i) { return *switches_.at(i); }

  /// Underlay IP assigned to vSwitch i (10.200.x.y scheme).
  static net::Ipv4Addr underlay_ip(std::size_t i) {
    return net::Ipv4Addr(10, 200, static_cast<std::uint8_t>(i / 250),
                         static_cast<std::uint8_t>(i % 250 + 1));
  }

  /// Creates a vNIC on vSwitch i and registers it with the controller
  /// (publishing its placement at the gateway). Returns the hosting switch.
  vswitch::VSwitch& add_vnic(std::size_t i, const vswitch::VnicConfig& config,
                             bool stateful_decap = false);

  /// Convenience: watch every vSwitch that currently hosts FEs.
  void watch_fe_hosts();

  void run_for(common::Duration d) { loop_.run_until(loop_.now() + d); }

 private:
  void wire_telemetry(const telemetry::TelemetryConfig& cfg);

  sim::EventLoop loop_;
  tables::VnicServerMap gateway_;
  std::unique_ptr<sim::Network> network_;
  std::vector<std::unique_ptr<vswitch::VSwitch>> switches_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<HealthMonitor> monitor_;
  std::unique_ptr<LinkProber> link_prober_;
  std::unique_ptr<telemetry::Hub> telemetry_;
};

}  // namespace nezha::core
