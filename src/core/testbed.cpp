#include "src/core/testbed.h"

#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>

namespace nezha::core {

TestbedConfig make_clos_testbed_config(std::size_t num_vswitches,
                                       std::uint32_t hosts_per_leaf,
                                       std::uint32_t num_spines,
                                       double oversubscription) {
  TestbedConfig config;
  config.num_vswitches = num_vswitches;
  config.topology.kind = sim::FabricKind::kClos;
  if (hosts_per_leaf == 0) hosts_per_leaf = 1;
  // The monitor occupies node id num_vswitches + 1; cover it with a leaf.
  const std::size_t nodes = num_vswitches + 2;
  config.topology.clos.hosts_per_leaf = hosts_per_leaf;
  config.topology.clos.num_leaves = static_cast<std::uint32_t>(
      (nodes + hosts_per_leaf - 1) / hosts_per_leaf);
  config.topology.clos.num_spines = num_spines;
  config.topology.clos.oversubscription = oversubscription;
  return config;
}

Testbed::Testbed(TestbedConfig config) : topology_(config.topology) {
  // The monitor occupies node id num_vswitches + 1; shard the whole id
  // range so every node (including it) has a home shard.
  shard_map_ = sim::ShardMap::make(
      topology_.rack_count(config.num_vswitches + 2),
      static_cast<std::uint32_t>(config.shards));
  num_shards_ = shard_map_.shards;
  threads_ = config.threads < 1 ? 1 : config.threads;

  // Shard 0 reuses loop_/network_: a shards=1 testbed is object-for-object
  // the classic single-loop one (bit-identical runs, same code path).
  network_ = std::make_unique<sim::Network>(loop_, topology_, config.network);
  for (std::uint32_t s = 1; s < num_shards_; ++s) {
    extra_loops_.push_back(std::make_unique<sim::EventLoop>());
    extra_networks_.push_back(std::make_unique<sim::Network>(
        *extra_loops_.back(), topology_, config.network));
  }
  if (num_shards_ > 1) {
    std::vector<sim::ShardedEngine::Shard> shards;
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      shards.push_back(
          sim::ShardedEngine::Shard{&loop_of_shard(s), &network_of_shard(s)});
    }
    sim::ShardedEngineConfig ecfg;
    ecfg.epoch = topology_.min_cross_rack_latency();
    ecfg.ring_capacity = config.shard_ring_capacity;
    ecfg.fast_forward = config.shard_fast_forward;
    engine_ = std::make_unique<sim::ShardedEngine>(std::move(shards), ecfg);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      network_of_shard(s).set_shard_router(engine_.get(), s);
    }
  }

  for (std::size_t i = 0; i < config.num_vswitches; ++i) {
    const std::uint32_t s = shard_of_node(static_cast<sim::NodeId>(i));
    auto vs = std::make_unique<vswitch::VSwitch>(
        static_cast<sim::NodeId>(i), "vswitch-" + std::to_string(i),
        underlay_ip(i), loop_of_shard(s), network_of_shard(s), gateway_,
        config.vswitch);
    network_of_shard(s).attach(*vs);
    if (engine_ != nullptr) engine_->map_ip(underlay_ip(i), s, vs->id());
    switches_.push_back(std::move(vs));
  }
  // Control plane lives on shard 0. Under the fence protocol its
  // cross-shard continuations run as fenced sections at epoch barriers;
  // otherwise the legacy contract applies (threads == 1 or quiescent).
  controller_ = std::make_unique<Controller>(loop_, *network_, gateway_,
                                             config.controller);
  fenced_control_ = engine_ != nullptr && config.shard_fences;
  if (fenced_control_) controller_->set_fence_scheduler(engine_.get());
  for (auto& vs : switches_) controller_->add_vswitch(vs.get());
  const sim::NodeId monitor_id =
      static_cast<sim::NodeId>(config.num_vswitches + 1);
  const std::uint32_t monitor_shard = shard_of_node(monitor_id);
  monitor_ = std::make_unique<HealthMonitor>(
      monitor_id, net::Ipv4Addr(10, 255, 0, 1), loop_of_shard(monitor_shard),
      network_of_shard(monitor_shard), config.monitor);
  network_of_shard(monitor_shard).attach(*monitor_);
  if (engine_ != nullptr) {
    engine_->map_ip(net::Ipv4Addr(10, 255, 0, 1), monitor_shard, monitor_id);
  }
  // The monitor fires this from its own shard's advance phase; failover
  // touches the whole fleet, so under fences it becomes a fenced section
  // at the next barrier (due 0 = "as soon as everyone is parked").
  monitor_->set_crash_callback([this](sim::NodeId node) {
    if (fenced_control_) {
      engine_->schedule_fenced(
          0, [this, node]() { controller_->handle_fe_crash(node); });
    } else {
      controller_->handle_fe_crash(node);
    }
  });
  link_prober_ = std::make_unique<LinkProber>(loop_, *network_);
  link_prober_->set_failure_callback(
      [this](tables::VnicId id, sim::NodeId fe) {
        if (fenced_control_) {
          engine_->schedule_fenced(0, [this, id, fe]() {
            controller_->handle_link_failure(id, fe);
          });
        } else {
          controller_->handle_link_failure(id, fe);
        }
      });
  if (config.telemetry.enabled) {
    // Probe replies trail probe sends by up to the probe timeout; the SLO
    // tracker compares replies against the probe count from this many
    // sampler ticks ago so in-flight probes never read as loss.
    const common::Duration period = config.telemetry.sample_period < 1
                                        ? 1
                                        : config.telemetry.sample_period;
    slo_probe_lag_ticks_ = static_cast<std::uint32_t>(
        (config.monitor.probe_timeout + period - 1) / period + 1);
    wire_telemetry(config.telemetry);
  }
}

void Testbed::wire_telemetry(const telemetry::TelemetryConfig& cfg) {
  // Node-id space: vSwitches occupy [0, N), the monitor N+1; anything else
  // lands in the hub's spillover ring. Sharded beds get one hub per shard
  // (disjoint packet-id streams, own sampler on the shard's loop) so the
  // datapath never records across threads.
  telemetry_ = std::make_unique<telemetry::Hub>(switches_.size() + 2, cfg);
  for (std::uint32_t s = 1; s < num_shards_; ++s) {
    extra_hubs_.push_back(
        std::make_unique<telemetry::Hub>(switches_.size() + 2, cfg));
  }
  if (num_shards_ > 1) {
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
      telemetry_of_shard(s)->set_packet_id_stream(s);
    }
  }
  controller_->set_telemetry(telemetry_.get());
  monitor_->set_telemetry(telemetry_of_shard(
      shard_of_node(static_cast<sim::NodeId>(switches_.size() + 1))));
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    wire_shard_telemetry(s, telemetry_of_shard(s));
  }
  if (engine_ != nullptr) {
    // Fence lifecycle into shard 0's flight recorder (fence taps always run
    // in a quiescent context, on the thread that owns shard 0's hub). Node
    // id = switches_.size(): the spare slot between the vSwitches [0, N)
    // and the monitor N+1 — "the controller".
    telemetry::Hub* hub0 = telemetry_.get();
    const auto ctrl_node = static_cast<std::uint32_t>(switches_.size());
    engine_->set_fence_trace(
        [hub0, ctrl_node](const sim::ShardedEngine::FenceTracePoint& p) {
          telemetry::TraceEvent e;
          e.at = p.at;
          e.node = ctrl_node;
          e.kind = p.executed ? telemetry::EventKind::kFenceExec
                              : telemetry::EventKind::kFenceSched;
          e.a = static_cast<std::uint64_t>(p.due < 0 ? 0 : p.due);
          e.b = p.seq;
          hub0->record(e);
        });
  }
}

void Testbed::wire_shard_telemetry(std::uint32_t shard, telemetry::Hub* hub) {
  sim::Network* net = &network_of_shard(shard);
  sim::EventLoop* loop = &loop_of_shard(shard);
  net->set_telemetry(hub);

  telemetry::MetricsRegistry& m = hub->metrics();
  m.gauge("net.delivered",
          [net] { return static_cast<double>(net->delivered()); });
  m.gauge("net.dropped",
          [net] { return static_cast<double>(net->dropped_total()); });
  m.gauge("net.in_flight",
          [net] { return static_cast<double>(net->in_flight()); });
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (shard_of_node(static_cast<sim::NodeId>(i)) != shard) continue;
    vswitch::VSwitch* vs = switches_[i].get();
    vs->set_telemetry(hub);
    const std::string p = "vs" + std::to_string(i);
    // The sampler's checkpoint lives in telemetry (shared_ptr in the
    // closure), so reading the gauge never mutates simulation state.
    m.gauge(p + ".cpu_util",
            [vs, loop, s = std::make_shared<vswitch::UtilizationSampler>()] {
              return s->sample(vs->cpu(), loop->now());
            });
    m.gauge(p + ".sessions",
            [vs] { return static_cast<double>(vs->sessions().size()); });
    m.gauge(p + ".session_mem",
            [vs] { return vs->session_memory().utilization(); });
    m.gauge(p + ".port_q", [net, id = vs->id()] {
      return static_cast<double>(net->port_queued_bytes(id));
    });
  }
  for (std::size_t i = 0; i < net->fabric_link_count(); ++i) {
    m.gauge("net.fabric_q." + std::to_string(i), [net, i] {
      return static_cast<double>(net->fabric_queued_bytes(i));
    });
  }
  const sim::NodeId monitor_id =
      static_cast<sim::NodeId>(switches_.size() + 1);
  if (shard == shard_of_node(monitor_id)) {
    // Probe-loss inputs for the SLO tracker; the monitor lives on exactly
    // one shard, so only that shard's series carries these.
    HealthMonitor* mon = monitor_.get();
    m.gauge("mon.probes_sent",
            [mon] { return static_cast<double>(mon->probes_sent()); });
    m.gauge("mon.probe_replies",
            [mon] { return static_cast<double>(mon->replies_received()); });
  }
  if (engine_ != nullptr) {
    sim::ShardedEngine* eng = engine_.get();
    if (shard == 0) {
      // Engine-global counters are written only by worker 0, which also
      // drives shard 0's sampler — same thread, no race.
      m.gauge("sim.epochs_skipped",
              [eng] { return static_cast<double>(eng->epochs_skipped()); });
      m.gauge("sim.fenced_sections", [eng] {
        return static_cast<double>(eng->fenced_sections_run());
      });
      m.gauge("sim.fences_queued",
              [eng] { return static_cast<double>(eng->fences_queued()); });
    }
    // Per-shard barrier-wait histogram: observed by the shard's owning
    // worker, sampled by the same worker's advance phase — per-shard hubs
    // keep the registries disjoint across threads.
    const telemetry::MetricsRegistry::Id wait_id =
        m.histogram("sim.barrier_wait_us", 0.0, 10000.0, 32);
    telemetry::MetricsRegistry* reg = &m;
    eng->set_barrier_wait_observer(
        shard, [reg, wait_id](double us) { reg->observe(wait_id, us); });
    // Shard-phase profile section: every *_wall_ns field is wall-clock
    // (report-excluded from determinism gates); `epochs` and the shard-0
    // fence_barriers / ff_jumps counts are thread- and run-invariant.
    // Written at write_json time, i.e. quiescent.
    m.add_json_section("sim.profile", [eng, shard](std::string& out) {
      const sim::ShardedEngine::PhaseProfile p = eng->phase_profile(shard);
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"shard\": %u, \"epochs\": %llu, "
                    "\"snapshot_wall_ns\": %llu, \"advance_wall_ns\": %llu, "
                    "\"barrier_wait_wall_ns\": %llu, "
                    "\"fast_forward_wall_ns\": %llu",
                    shard, static_cast<unsigned long long>(p.epochs),
                    static_cast<unsigned long long>(p.snapshot_ns),
                    static_cast<unsigned long long>(p.advance_ns),
                    static_cast<unsigned long long>(p.barrier_wait_ns),
                    static_cast<unsigned long long>(p.fast_forward_ns));
      out += buf;
      if (shard == 0) {
        const sim::ShardedEngine::EngineProfile ep = eng->engine_profile();
        std::snprintf(buf, sizeof(buf),
                      ", \"fence_barriers\": %llu, \"ff_jumps\": %llu, "
                      "\"fence_wall_ns\": %llu",
                      static_cast<unsigned long long>(ep.fence_barriers),
                      static_cast<unsigned long long>(ep.ff_jumps),
                      static_cast<unsigned long long>(ep.fence_wall_ns));
        out += buf;
      }
      out += '}';
    });
  }
  // SLO tracker last: it resolves ids against everything registered above
  // and must precede start_sampler so its violation counters join the
  // series and its tick observer sees every tick.
  hub->enable_slo(telemetry::SloWiring{
      static_cast<std::uint32_t>(switches_.size()),
      static_cast<std::uint32_t>(switches_.size() + 1),
      slo_probe_lag_ticks_});
  hub->start_sampler(*loop);
}

Testbed::NetTotals Testbed::net_totals() const {
  NetTotals t;
  const sim::Network* nets[1] = {network_.get()};
  auto add = [&t](const sim::Network& n) {
    t.sent += n.sent();
    t.delivered += n.delivered();
    t.dropped += n.dropped_total();
    t.in_flight += n.in_flight();
    t.exported += n.exported();
    t.imported += n.imported();
    t.total_bytes += n.total_bytes_sent();
    const auto& sb = n.spine_bytes();
    if (t.spine_bytes.size() < sb.size()) t.spine_bytes.resize(sb.size());
    for (std::size_t i = 0; i < sb.size(); ++i) t.spine_bytes[i] += sb[i];
  };
  add(*nets[0]);
  for (const auto& n : extra_networks_) add(*n);
  return t;
}

void Testbed::dump_merged_trace(std::ostream& os) const {
  if (telemetry_ == nullptr) return;
  std::vector<const telemetry::FlightRecorder*> recs;
  recs.push_back(&telemetry_->recorder());
  for (const auto& h : extra_hubs_) recs.push_back(&h->recorder());
  telemetry::dump_merged(os, recs);
}

void Testbed::schedule_control(common::TimePoint at,
                               std::function<void()> fn) {
  if (fenced_control_) {
    engine_->schedule_fenced(at, std::move(fn));
  } else {
    loop_.schedule_at(at, std::move(fn));
  }
}

void Testbed::watch_fe_links(tables::VnicId id) {
  vswitch::VSwitch* home = controller_->home_of(id);
  if (home == nullptr) return;
  for (sim::NodeId fe : controller_->fe_nodes_of(id)) {
    link_prober_->watch(id, home, fe, vswitch(fe).underlay_ip());
  }
  link_prober_->start();
}

vswitch::VSwitch& Testbed::add_vnic(std::size_t i,
                                    const vswitch::VnicConfig& config,
                                    bool stateful_decap) {
  vswitch::VSwitch& vs = vswitch(i);
  auto status = vs.add_vnic(config, stateful_decap);
  if (!status.ok()) {
    throw std::runtime_error("add_vnic failed: " + status.error().message);
  }
  controller_->register_vnic(&vs, config, stateful_decap);
  return vs;
}

void Testbed::watch_fe_hosts() {
  for (auto& vs : switches_) {
    if (vs->frontend_count() > 0) {
      monitor_->watch(vs->id(), vs->underlay_ip());
    }
  }
}

}  // namespace nezha::core
