#include "src/core/testbed.h"

namespace nezha::core {

TestbedConfig make_clos_testbed_config(std::size_t num_vswitches,
                                       std::uint32_t hosts_per_leaf,
                                       std::uint32_t num_spines,
                                       double oversubscription) {
  TestbedConfig config;
  config.num_vswitches = num_vswitches;
  config.topology.kind = sim::FabricKind::kClos;
  if (hosts_per_leaf == 0) hosts_per_leaf = 1;
  // The monitor occupies node id num_vswitches + 1; cover it with a leaf.
  const std::size_t nodes = num_vswitches + 2;
  config.topology.clos.hosts_per_leaf = hosts_per_leaf;
  config.topology.clos.num_leaves = static_cast<std::uint32_t>(
      (nodes + hosts_per_leaf - 1) / hosts_per_leaf);
  config.topology.clos.num_spines = num_spines;
  config.topology.clos.oversubscription = oversubscription;
  return config;
}

Testbed::Testbed(TestbedConfig config) {
  network_ = std::make_unique<sim::Network>(
      loop_, sim::Topology(config.topology), config.network);
  for (std::size_t i = 0; i < config.num_vswitches; ++i) {
    auto vs = std::make_unique<vswitch::VSwitch>(
        static_cast<sim::NodeId>(i), "vswitch-" + std::to_string(i),
        underlay_ip(i), loop_, *network_, gateway_, config.vswitch);
    network_->attach(*vs);
    switches_.push_back(std::move(vs));
  }
  controller_ = std::make_unique<Controller>(loop_, *network_, gateway_,
                                             config.controller);
  for (auto& vs : switches_) controller_->add_vswitch(vs.get());
  monitor_ = std::make_unique<HealthMonitor>(
      static_cast<sim::NodeId>(config.num_vswitches + 1),
      net::Ipv4Addr(10, 255, 0, 1), loop_, *network_, config.monitor);
  network_->attach(*monitor_);
  monitor_->set_crash_callback(
      [this](sim::NodeId node) { controller_->handle_fe_crash(node); });
  link_prober_ = std::make_unique<LinkProber>(loop_, *network_);
  link_prober_->set_failure_callback(
      [this](tables::VnicId id, sim::NodeId fe) {
        controller_->handle_link_failure(id, fe);
      });
  if (config.telemetry.enabled) wire_telemetry(config.telemetry);
}

void Testbed::wire_telemetry(const telemetry::TelemetryConfig& cfg) {
  // Node-id space: vSwitches occupy [0, N), the monitor N+1; anything else
  // lands in the hub's spillover ring.
  telemetry_ = std::make_unique<telemetry::Hub>(switches_.size() + 2, cfg);
  telemetry::Hub* hub = telemetry_.get();
  network_->set_telemetry(hub);
  for (auto& vs : switches_) vs->set_telemetry(hub);
  controller_->set_telemetry(hub);
  monitor_->set_telemetry(hub);

  telemetry::MetricsRegistry& m = hub->metrics();
  sim::Network* net = network_.get();
  m.gauge("net.delivered",
          [net] { return static_cast<double>(net->delivered()); });
  m.gauge("net.dropped",
          [net] { return static_cast<double>(net->dropped_total()); });
  m.gauge("net.in_flight",
          [net] { return static_cast<double>(net->in_flight()); });
  sim::EventLoop* loop = &loop_;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    vswitch::VSwitch* vs = switches_[i].get();
    const std::string p = "vs" + std::to_string(i);
    // The sampler's checkpoint lives in telemetry (shared_ptr in the
    // closure), so reading the gauge never mutates simulation state.
    m.gauge(p + ".cpu_util",
            [vs, loop, s = std::make_shared<vswitch::UtilizationSampler>()] {
              return s->sample(vs->cpu(), loop->now());
            });
    m.gauge(p + ".sessions",
            [vs] { return static_cast<double>(vs->sessions().size()); });
    m.gauge(p + ".session_mem",
            [vs] { return vs->session_memory().utilization(); });
    m.gauge(p + ".port_q", [net, id = vs->id()] {
      return static_cast<double>(net->port_queued_bytes(id));
    });
  }
  for (std::size_t i = 0; i < net->fabric_link_count(); ++i) {
    m.gauge("net.fabric_q." + std::to_string(i), [net, i] {
      return static_cast<double>(net->fabric_queued_bytes(i));
    });
  }
  telemetry_->start_sampler(loop_);
}

void Testbed::watch_fe_links(tables::VnicId id) {
  vswitch::VSwitch* home = controller_->home_of(id);
  if (home == nullptr) return;
  for (sim::NodeId fe : controller_->fe_nodes_of(id)) {
    link_prober_->watch(id, home, fe, vswitch(fe).underlay_ip());
  }
  link_prober_->start();
}

vswitch::VSwitch& Testbed::add_vnic(std::size_t i,
                                    const vswitch::VnicConfig& config,
                                    bool stateful_decap) {
  vswitch::VSwitch& vs = vswitch(i);
  auto status = vs.add_vnic(config, stateful_decap);
  if (!status.ok()) {
    throw std::runtime_error("add_vnic failed: " + status.error().message);
  }
  controller_->register_vnic(&vs, config, stateful_decap);
  return vs;
}

void Testbed::watch_fe_hosts() {
  for (auto& vs : switches_) {
    if (vs->frontend_count() > 0) {
      monitor_->watch(vs->id(), vs->underlay_ip());
    }
  }
}

}  // namespace nezha::core
