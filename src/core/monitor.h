// Centralized FE crash monitoring (§4.4, Appendix C).
//
// The monitor ping-polls every vSwitch that hosts FEs. Probes carry a
// specific destination port that the SmartNICs flow-direct straight to the
// vSwitch VF, so the answer reflects vSwitch health rather than the other
// hypervisors sharing the NIC. After `miss_threshold` consecutive unanswered
// probes the target is declared crashed and the failover callback fires —
// unless the widespread-failure guard trips (§C.2): when more than the
// configured fraction of targets look dead at once, automatic removal is
// suspended (production experience says that pattern is usually a monitoring
// bug, handled by humans).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/time.h"
#include "src/sim/network.h"
#include "src/sim/node.h"

namespace nezha::telemetry {
class Hub;
}

namespace nezha::core {

struct MonitorConfig {
  common::Duration probe_interval = common::milliseconds(500);
  common::Duration probe_timeout = common::milliseconds(300);
  int miss_threshold = 3;
  /// §C.2 guard: suspend auto-removal when more than this fraction of
  /// watched targets appear dead simultaneously.
  double widespread_failure_fraction = 0.5;
};

class HealthMonitor : public sim::Node {
 public:
  HealthMonitor(sim::NodeId id, net::Ipv4Addr underlay_ip,
                sim::EventLoop& loop, sim::Network& network,
                MonitorConfig config = {});

  using CrashFn = std::function<void(sim::NodeId)>;
  void set_crash_callback(CrashFn fn) { on_crash_ = std::move(fn); }

  /// Telemetry hook (null = off): probe sends/replies and crash
  /// declarations/suppressions go to the flight recorder.
  void set_telemetry(telemetry::Hub* hub) { telemetry_ = hub; }

  /// Starts probing a vSwitch.
  void watch(sim::NodeId node, net::Ipv4Addr ip);
  void unwatch(sim::NodeId node);
  std::size_t watched() const { return targets_.size(); }

  void start();

  void receive(net::Packet pkt) override;

  // --- stats ---
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t replies_received() const { return replies_; }
  std::uint64_t crashes_declared() const { return crashes_; }
  std::uint64_t declarations_suppressed() const { return suppressed_; }

 private:
  struct Target {
    net::Ipv4Addr ip;
    int consecutive_misses = 0;
    std::uint64_t outstanding_probe = 0;  // probe id awaiting a reply
    bool reply_seen = false;
    bool declared_dead = false;
  };

  void probe_all();
  void send_probe(sim::NodeId node, Target& target);
  void check_probe(sim::NodeId node, std::uint64_t probe_id);
  std::size_t dead_count() const;

  sim::EventLoop& loop_;
  sim::Network& network_;
  MonitorConfig config_;
  std::unordered_map<sim::NodeId, Target> targets_;
  std::unordered_map<std::uint64_t, sim::NodeId> probe_owner_;
  CrashFn on_crash_;
  telemetry::Hub* telemetry_ = nullptr;
  std::uint64_t next_probe_id_ = 1;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t suppressed_ = 0;
  bool started_ = false;
};

}  // namespace nezha::core
