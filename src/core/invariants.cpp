#include "src/core/invariants.h"

#include <sstream>

#include "src/core/testbed.h"

namespace nezha::core {

InvariantChecker::InvariantChecker(Testbed& bed, InvariantCheckerConfig config)
    : bed_(bed), config_(config) {
  stimuli_.reserve(config_.max_stimuli);
}

void InvariantChecker::attach(common::Duration period) {
  bed_.loop().schedule_periodic(period, [this]() { check(); });
}

void InvariantChecker::record(std::string stimulus) {
  Stimulus s{bed_.loop().now(), std::move(stimulus)};
  if (stimuli_.size() < config_.max_stimuli) {
    stimuli_.push_back(std::move(s));
  } else {
    stimuli_[stimuli_next_ % config_.max_stimuli] = std::move(s);
  }
  ++stimuli_next_;
}

void InvariantChecker::violation(const std::string& what) {
  if (violations_.size() >= config_.max_violations) return;
  std::ostringstream os;
  os << "[t=" << bed_.loop().now() << "ns] " << what;
  violations_.push_back(os.str());
}

void InvariantChecker::check() {
  ++checks_run_;
  check_conservation();
  check_vnic_placement();
  check_monotone_counters();
  if (config_.gate_slo) check_slo();
}

void InvariantChecker::check_slo() {
  // Sum the SLO tracker's interned violation counters across every shard
  // hub. Only ever grows; report the first crossing above zero (then each
  // subsequent growth, bounded by max_violations).
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < bed_.shard_count(); ++s) {
    telemetry::Hub* hub = bed_.telemetry_of_shard(s);
    if (hub == nullptr) continue;
    const telemetry::MetricsRegistry& m = hub->metrics();
    const auto id = m.find_counter("slo.violations");
    if (id != telemetry::MetricsRegistry::kInvalidId) {
      total += m.counter_value(id);
    }
  }
  if (total > prev_slo_violations_) {
    std::ostringstream os;
    os << "SLO violations grew " << prev_slo_violations_ << " -> " << total
       << " (slo.violations counters across shard hubs)";
    violation(os.str());
    prev_slo_violations_ = total;
  }
}

void InvariantChecker::check_conservation() {
  // Per-shard identity (reduces to the classic sent == delivered + dropped
  // + in_flight when exported/imported are 0, i.e. every unsharded bed).
  for (std::uint32_t s = 0; s < bed_.shard_count(); ++s) {
    const sim::Network& net = bed_.network_of_shard(s);
    const std::uint64_t in = net.sent() + net.imported();
    const std::uint64_t out = net.delivered() + net.dropped_total() +
                              net.in_flight() + net.exported();
    if (in != out) {
      std::ostringstream os;
      os << "packet conservation broken on shard " << s
         << ": sent=" << net.sent() << " + imported=" << net.imported()
         << " != delivered=" << net.delivered()
         << " + dropped=" << net.dropped_total()
         << " + in_flight=" << net.in_flight()
         << " + exported=" << net.exported();
      violation(os.str());
    }
  }
  // Cross-shard: every exported packet is either already imported by its
  // destination shard or still sitting in a token ring. Quiescent reads
  // only (the harness runs between run_for() calls on threaded beds).
  const Testbed::NetTotals t = bed_.net_totals();
  if (bed_.engine() != nullptr) {
    const std::uint64_t pending = bed_.engine()->tokens_pending();
    if (t.exported != t.imported + pending) {
      std::ostringstream os;
      os << "cross-shard conservation broken: exported=" << t.exported
         << " != imported=" << t.imported << " + tokens_pending=" << pending;
      violation(os.str());
    }
    if (bed_.engine()->late_tokens() != 0) {
      violation("conservative lookahead violated: " +
                std::to_string(bed_.engine()->late_tokens()) +
                " tokens injected past their due time");
    }
  }
  if (t.sent < prev_sent_ || t.delivered < prev_delivered_ ||
      t.dropped < prev_dropped_) {
    violation("network counters regressed");
  }
  prev_sent_ = t.sent;
  prev_delivered_ = t.delivered;
  prev_dropped_ = t.dropped;
}

void InvariantChecker::check_vnic_placement() {
  Controller& ctrl = bed_.controller();
  for (tables::VnicId id : ctrl.vnic_ids()) {
    vswitch::VSwitch* home = ctrl.home_of(id);
    if (home == nullptr) {
      violation("vnic " + std::to_string(id) + " has no home vSwitch");
      continue;
    }
    // Single-copy session state: the vNIC instance exists on exactly one
    // vSwitch — its home (§3.2.1).
    std::size_t instances = 0;
    for (std::size_t i = 0; i < bed_.size(); ++i) {
      if (bed_.vswitch(i).find_vnic(id) != nullptr) ++instances;
    }
    if (instances != 1) {
      violation("vnic " + std::to_string(id) + " exists on " +
                std::to_string(instances) + " vSwitches (want exactly 1)");
    }
    vswitch::Vnic* v = home->vnic(id);
    if (v == nullptr) {
      violation("vnic " + std::to_string(id) + " missing at its home");
      continue;
    }

    // Memory pools never over-release.
    if (home->rule_memory().used() > home->rule_memory().capacity() ||
        home->session_memory().used() > home->session_memory().capacity()) {
      violation("memory pool over-committed on node " +
                std::to_string(home->id()));
    }

    // Transition windows intentionally dual-run tables; skip the strict
    // shape checks while one is in flight.
    if (ctrl.transition_pending(id)) continue;

    // BE/FE rule-table consistency: local tables exist iff the vNIC is not
    // in the offloaded final stage.
    switch (v->mode()) {
      case vswitch::VnicMode::kLocal:
        if (!v->has_local_tables()) {
          violation("local vnic " + std::to_string(id) +
                    " lost its rule tables");
        }
        break;
      case vswitch::VnicMode::kOffloaded:
        if (v->has_local_tables()) {
          violation("offloaded vnic " + std::to_string(id) +
                    " still holds local rule tables");
        }
        if (v->fe_locations().empty()) {
          violation("offloaded vnic " + std::to_string(id) +
                    " has no FE locations configured at the BE");
        }
        break;
      case vswitch::VnicMode::kOffloadDualRunning:
      case vswitch::VnicMode::kFallbackDualRunning:
        // Dual-running stages keep local tables by design.
        if (!v->has_local_tables()) {
          violation("dual-running vnic " + std::to_string(id) +
                    " lost its rule tables");
        }
        break;
    }

    // Gateway consistency: the published placement resolves, and when the
    // vNIC is offloaded every published FE location resolves to a live
    // FrontendInstance on that vSwitch (the scale-out publish filter).
    const auto* entry = bed_.gateway().lookup(v->addr());
    if (entry == nullptr || entry->placement.locations.empty()) {
      violation("vnic " + std::to_string(id) +
                " has no gateway placement published");
      continue;
    }
    if (ctrl.is_offloaded(id) && v->mode() == vswitch::VnicMode::kOffloaded) {
      for (const tables::Location& loc : entry->placement.locations) {
        vswitch::VSwitch* host = nullptr;
        for (std::size_t i = 0; i < bed_.size(); ++i) {
          if (bed_.vswitch(i).underlay_ip() == loc.ip) {
            host = &bed_.vswitch(i);
            break;
          }
        }
        if (host == nullptr) {
          violation("vnic " + std::to_string(id) +
                    " placement names an unknown underlay address");
          continue;
        }
        vswitch::FrontendInstance* fe = host->frontend(id);
        if (fe == nullptr) {
          violation("vnic " + std::to_string(id) +
                    " placement names node " + std::to_string(host->id()) +
                    " which hosts no FrontendInstance (not-yet-installed "
                    "FE published)");
          continue;
        }
        // Single-copy session state, FE side: flow caches are stateless by
        // construction — state lives only in the BE's unified store.
        if (fe->flow_cache.config().store_state) {
          violation("FE flow cache for vnic " + std::to_string(id) +
                    " on node " + std::to_string(host->id()) +
                    " is configured to store session state");
        }
      }
    }
  }
}

void InvariantChecker::check_monotone_counters() {
  const Controller& ctrl = bed_.controller();
  if (ctrl.offload_events() < prev_offloads_ ||
      ctrl.fallback_events() < prev_fallbacks_ ||
      ctrl.scale_out_events() < prev_scale_outs_ ||
      ctrl.scale_in_events() < prev_scale_ins_ ||
      ctrl.failover_events() < prev_failovers_ ||
      ctrl.displacement_events() < prev_displacements_) {
    violation("controller event counters regressed");
  }
  prev_offloads_ = ctrl.offload_events();
  prev_fallbacks_ = ctrl.fallback_events();
  prev_scale_outs_ = ctrl.scale_out_events();
  prev_scale_ins_ = ctrl.scale_in_events();
  prev_failovers_ = ctrl.failover_events();
  prev_displacements_ = ctrl.displacement_events();
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  os << "InvariantChecker replay report\n"
     << "  seed: " << config_.seed << "\n"
     << "  checks run: " << checks_run_ << "\n"
     << "  violations (" << violations_.size() << "):\n";
  for (const std::string& v : violations_) os << "    " << v << "\n";
  os << "  stimulus trace (" << std::min(stimuli_next_, stimuli_.size())
     << " of " << stimuli_next_ << " recorded):\n";
  // Ring order: oldest first.
  const std::size_t n = stimuli_.size();
  const std::size_t start = stimuli_next_ > n ? stimuli_next_ % n : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Stimulus& s = stimuli_[(start + i) % n];
    os << "    [t=" << s.at << "ns] " << s.text << "\n";
  }
  os << "  replay: rerun with this seed; the stimulus trace reproduces the "
        "event sequence.\n";
  return os.str();
}

}  // namespace nezha::core
