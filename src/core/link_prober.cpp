#include "src/core/link_prober.h"

namespace nezha::core {

LinkProber::LinkProber(sim::EventLoop& loop, sim::Network& network,
                       LinkProberConfig config)
    : loop_(loop), network_(network), config_(config) {}

void LinkProber::hook_be(vswitch::VSwitch* be) {
  if (hooked_[be->id()]) return;
  hooked_[be->id()] = true;
  be->set_link_probe_reply_handler([this](const net::Packet& reply) {
    auto it = probe_owner_.find(reply.id);
    if (it == probe_owner_.end()) return;
    auto pit = paths_.find(it->second);
    probe_owner_.erase(it);
    if (pit == paths_.end()) return;
    if (pit->second.outstanding == reply.id) {
      pit->second.reply_seen = true;
      pit->second.misses = 0;
    }
  });
}

void LinkProber::watch(tables::VnicId vnic, vswitch::VSwitch* be,
                       sim::NodeId fe_node, net::Ipv4Addr fe_ip) {
  hook_be(be);
  paths_[PathKey{vnic, fe_node}] = Path{be, fe_ip, 0, 0, false, false};
}

void LinkProber::unwatch(tables::VnicId vnic, sim::NodeId fe_node) {
  paths_.erase(PathKey{vnic, fe_node});
}

void LinkProber::start() {
  if (started_) return;
  started_ = true;
  loop_.schedule_periodic(config_.probe_interval, [this]() { probe_all(); });
}

void LinkProber::probe_all() {
  for (auto& [key, path] : paths_) {
    if (path.dead) continue;
    const std::uint64_t probe_id = next_probe_id_++;
    // The probe travels from the BE's NIC port, so a partitioned BE↔FE
    // path drops it even though both nodes are up.
    net::FiveTuple ft{path.be->underlay_ip(), path.fe_ip,
                      vswitch::kLinkProbeReplyPort,
                      vswitch::kHealthProbePort, net::IpProto::kUdp};
    net::Packet probe = net::make_udp_packet(ft, 0, 0);
    probe.id = probe_id;
    path.outstanding = probe_id;
    path.reply_seen = false;
    probe_owner_[probe_id] = key;
    ++probes_sent_;
    network_.send(path.be->id(), path.fe_ip, std::move(probe));

    const PathKey k = key;
    loop_.schedule_after(config_.probe_timeout, [this, k, probe_id]() {
      auto it = paths_.find(k);
      if (it == paths_.end()) return;
      Path& p = it->second;
      if (p.outstanding != probe_id || p.reply_seen || p.dead) return;
      probe_owner_.erase(probe_id);
      if (++p.misses < config_.miss_threshold) return;
      p.dead = true;
      ++failures_;
      if (on_failure_) on_failure_(k.vnic, k.fe);
    });
  }
}

}  // namespace nezha::core
