#include "src/core/monitor.h"

#include "src/telemetry/hub.h"
#include "src/vswitch/vswitch.h"

namespace nezha::core {

namespace {

void record_probe(telemetry::Hub* hub, common::TimePoint at,
                  std::uint32_t node, telemetry::EventKind kind,
                  std::uint64_t target, std::uint64_t probe_id) {
  if (hub == nullptr) return;
  telemetry::TraceEvent e;
  e.at = at;
  e.node = node;
  e.kind = kind;
  e.a = target;
  e.b = probe_id;
  e.packet_id = probe_id;
  hub->record(e);
}

}  // namespace

HealthMonitor::HealthMonitor(sim::NodeId id, net::Ipv4Addr underlay_ip,
                             sim::EventLoop& loop, sim::Network& network,
                             MonitorConfig config)
    : Node(id, "health-monitor", underlay_ip, net::MacAddr(0xfeedULL)),
      loop_(loop), network_(network), config_(config) {}

void HealthMonitor::watch(sim::NodeId node, net::Ipv4Addr ip) {
  targets_.emplace(node, Target{ip, 0, 0, false, false});
}

void HealthMonitor::unwatch(sim::NodeId node) { targets_.erase(node); }

void HealthMonitor::start() {
  if (started_) return;
  started_ = true;
  loop_.schedule_periodic(config_.probe_interval, [this]() { probe_all(); });
}

void HealthMonitor::probe_all() {
  for (auto& [node, target] : targets_) {
    if (!target.declared_dead) send_probe(node, target);
  }
}

void HealthMonitor::send_probe(sim::NodeId node, Target& target) {
  const std::uint64_t probe_id = next_probe_id_++;
  net::FiveTuple ft{underlay_ip(), target.ip, 40000,
                    vswitch::kHealthProbePort, net::IpProto::kUdp};
  net::Packet probe = net::make_udp_packet(ft, 0, 0);
  probe.id = probe_id;
  target.outstanding_probe = probe_id;
  target.reply_seen = false;
  probe_owner_[probe_id] = node;
  ++probes_sent_;
  record_probe(telemetry_, loop_.now(), id(),
               telemetry::EventKind::kProbeSent, node, probe_id);
  network_.send(id(), target.ip, std::move(probe));
  loop_.schedule_after(config_.probe_timeout, [this, node, probe_id]() {
    check_probe(node, probe_id);
  });
}

void HealthMonitor::receive(net::Packet pkt) {
  auto it = probe_owner_.find(pkt.id);
  if (it == probe_owner_.end()) return;
  const sim::NodeId node = it->second;
  probe_owner_.erase(it);
  auto tit = targets_.find(node);
  if (tit == targets_.end()) return;
  ++replies_;
  record_probe(telemetry_, loop_.now(), id(),
               telemetry::EventKind::kProbeReply, node, pkt.id);
  if (tit->second.outstanding_probe == pkt.id) {
    tit->second.reply_seen = true;
    tit->second.consecutive_misses = 0;
  }
}

std::size_t HealthMonitor::dead_count() const {
  std::size_t n = 0;
  for (const auto& [node, target] : targets_) {
    if (target.declared_dead ||
        target.consecutive_misses >= config_.miss_threshold) {
      ++n;
    }
  }
  return n;
}

void HealthMonitor::check_probe(sim::NodeId node, std::uint64_t probe_id) {
  auto it = targets_.find(node);
  if (it == targets_.end()) return;
  Target& target = it->second;
  if (target.outstanding_probe != probe_id) return;  // superseded
  probe_owner_.erase(probe_id);
  if (target.reply_seen || target.declared_dead) return;
  ++target.consecutive_misses;
  if (target.consecutive_misses < config_.miss_threshold) return;

  // §C.2 guard: a sudden majority of "dead" FEs is more likely a monitoring
  // bug than a real mass failure; suspend automatic removal.
  const double dead_fraction =
      static_cast<double>(dead_count()) /
      static_cast<double>(targets_.empty() ? 1 : targets_.size());
  if (dead_fraction > config_.widespread_failure_fraction) {
    ++suppressed_;
    record_probe(telemetry_, loop_.now(), id(),
                 telemetry::EventKind::kCrashSuppressed, node, probe_id);
    return;
  }
  target.declared_dead = true;
  ++crashes_;
  record_probe(telemetry_, loop_.now(), id(),
               telemetry::EventKind::kCrashDeclared, node, probe_id);
  if (on_crash_) on_crash_(node);
}

}  // namespace nezha::core
