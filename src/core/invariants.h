// Invariant harness (DESIGN.md §8): a deterministic watchdog tests attach
// to a Testbed. Each check pass asserts the safety properties the design
// depends on — single-copy session state, BE/FE rule-table consistency,
// exact packet conservation, monotone control-plane state machines.
//
// Violations are collected, never thrown. On the first one the checker has
// a replay report ready (report()): the experiment seed, the violation
// list, and a ring of record()ed stimuli with sim-timestamps. Because the
// simulation is a pure function of (config, seed), the seed plus the
// stimulus trace IS the replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace nezha::core {

class Testbed;

struct InvariantCheckerConfig {
  /// Experiment seed, echoed into the replay report.
  std::uint64_t seed = 0;
  /// Stimulus ring capacity (oldest entries overwritten).
  std::size_t max_stimuli = 256;
  /// Stop collecting after this many violations (the first is the one that
  /// matters for replay; the cap keeps a broken run's report readable).
  std::size_t max_violations = 64;
  /// Treat SLO tracker breaches (the `slo.violations` counters, summed
  /// across shard hubs) as invariant violations. Opt-in: load tests
  /// deliberately saturate CPUs, which is an SLO breach but not a bug.
  bool gate_slo = false;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(Testbed& bed, InvariantCheckerConfig config = {});

  /// Hooks a periodic check() into the testbed's (shard 0) event loop.
  /// Sharded beds: attach() is for threads == 1 runs — a check pass reads
  /// every shard's counters, so on multi-threaded runs call check()
  /// between run_for() calls (all shards quiescent) instead.
  void attach(common::Duration period);

  /// Runs one full check pass now.
  void check();

  /// Records an experiment stimulus ("trigger_offload vnic=3",
  /// "crash node=7", ...) into the replay ring, stamped with sim-time.
  void record(std::string stimulus);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }

  /// Replay report: seed, violations, and the recorded stimulus ring.
  std::string report() const;

 private:
  struct Stimulus {
    common::TimePoint at = 0;
    std::string text;
  };

  void violation(const std::string& what);

  void check_conservation();
  void check_vnic_placement();
  void check_monotone_counters();
  void check_slo();

  Testbed& bed_;
  InvariantCheckerConfig config_;

  std::vector<std::string> violations_;
  std::vector<Stimulus> stimuli_;  // ring of capacity max_stimuli
  std::size_t stimuli_next_ = 0;
  std::uint64_t checks_run_ = 0;

  // Monotonicity baselines (previous check pass).
  std::uint64_t prev_sent_ = 0;
  std::uint64_t prev_delivered_ = 0;
  std::uint64_t prev_dropped_ = 0;
  std::uint64_t prev_offloads_ = 0;
  std::uint64_t prev_fallbacks_ = 0;
  std::uint64_t prev_scale_outs_ = 0;
  std::uint64_t prev_scale_ins_ = 0;
  std::uint64_t prev_failovers_ = 0;
  std::uint64_t prev_displacements_ = 0;
  std::uint64_t prev_slo_violations_ = 0;
};

}  // namespace nezha::core
