// The Nezha controller (§4): detects overloaded vSwitches, orchestrates
// user-transparent offload/fallback via the dual-stage workflow, scales the
// remote pool out/in per Fig 8, and performs FE failover with the
// minimum-4-FE rule.
//
// Control-plane operations are modeled with sampled configuration latencies
// (lognormal), so activation completion times form a distribution comparable
// to Table 4. The dataplane consequences (stale senders hitting retained
// tables, rehashed flows missing FE caches) emerge from the vSwitch and
// learned-map models rather than being scripted.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/policy/fe_policy.h"
#include "src/sim/network.h"
#include "src/tables/vnic_server_map.h"
#include "src/telemetry/trace_event.h"
#include "src/vswitch/vswitch.h"

namespace nezha::telemetry {
class Hub;
}

namespace nezha::sim {
class FenceScheduler;
}

namespace nezha::core {

struct ControllerConfig {
  /// Offload trigger: vSwitch resource utilization above this (Fig 8).
  double offload_threshold = 0.70;
  /// Scale-out/-in trigger on FE-hosting vSwitches (Fig 8).
  double scale_threshold = 0.40;
  /// Fallback requires projected local utilization below this safe level.
  double fallback_safe_level = 0.40;
  /// Initial and minimum #FEs (App B.2: init 4; §4.4: maintain ≥ 4).
  std::size_t initial_fes = 4;
  std::size_t min_fes = 4;
  /// FEs added per scale-out step (Fig 11 doubles 4 → 8).
  std::size_t scale_out_step = 4;
  common::Duration monitor_period = common::milliseconds(500);
  /// Minimum spacing between scale decisions for one vNIC's pool —
  /// prevents every alerting FE host from independently growing the same
  /// pool in a single monitoring round.
  common::Duration scale_cooldown = common::seconds(2);
  common::Duration learning_interval = common::milliseconds(200);
  common::Duration rtt_allowance = common::milliseconds(1);
  /// Lognormal parameters of each config-push latency (seconds scale is via
  /// mean_ms); calibrated so Table 4's activation distribution lands near
  /// avg 1s / P99 2s.
  double config_latency_mean_ms = 260.0;
  double config_latency_sigma = 0.45;
  std::uint64_t seed = 0x6e657a6861ULL;  // "nezha"
  bool auto_offload = true;
  bool auto_scale = true;
  bool auto_fallback = false;
  /// FE-selection strategy (DESIGN.md §14). The default static hash is the
  /// paper's behavior and keeps the golden fingerprints bit-identical; the
  /// controller pushes the policy to every vSwitch it manages.
  policy::PolicyKind fe_policy = policy::PolicyKind::kStaticHash;
  /// Minimum spacing between fleet-wide FE weight-book publications
  /// (kLoadAwareWeighted only; recomputed from monitor samples).
  common::Duration weight_update_period = common::seconds(1);
};

class Controller {
 public:
  Controller(sim::EventLoop& loop, sim::Network& network,
             tables::VnicServerMap& gateway, ControllerConfig config = {});

  const ControllerConfig& config() const { return config_; }

  /// Adds a vSwitch to the managed fleet (usable as FE pool and monitored
  /// for overload).
  void add_vswitch(vswitch::VSwitch* vs);

  /// Registers a tenant vNIC already hosted on `home` (home is its BE) and
  /// publishes its placement at the gateway.
  void register_vnic(vswitch::VSwitch* home,
                     const vswitch::VnicConfig& config, bool stateful_decap);

  /// Starts the periodic monitoring loop.
  void start();

  // ---------- explicit operations (monitoring calls these too) ----------
  /// Runs the full offload workflow for a vNIC. num_fes = 0 uses the
  /// configured initial count. Returns an error when no suitable FE set
  /// exists or the vNIC is not in local mode.
  common::Status trigger_offload(tables::VnicId id, std::size_t num_fes = 0);
  common::Status trigger_fallback(tables::VnicId id);
  common::Status scale_out(tables::VnicId id, std::size_t additional,
                           const std::vector<sim::NodeId>& extra_exclude = {});
  /// Removes every FE hosted on the given vSwitch (local-priority scale-in).
  void scale_in_vswitch(sim::NodeId node);
  /// Immediate removal + min-FE replacement after a detected crash (§4.4).
  void handle_fe_crash(sim::NodeId node);
  /// §C.1: the BE↔FE path (not the FE itself) failed for one vNIC — remove
  /// that FE from that vNIC's pool only, replacing it if below the minimum.
  void handle_link_failure(tables::VnicId id, sim::NodeId fe_node);
  /// §7.5: pushes a new FE-selection hash seed to the whole fleet (sender
  /// and BE hashing must agree for session-consistent FE mapping). Used to
  /// redistribute traffic when 5-tuple hashing lands unevenly.
  void reseed_fe_hash(std::uint64_t seed);
  /// Switches the FE-selection policy (DESIGN.md §14) and pushes it —
  /// plus the current weight book — to the whole fleet, like a reseed:
  /// sender and BE selection must agree, and like a reseed it is safe
  /// mid-traffic (FEs are stateless; rehashed flows cost one rule lookup).
  void set_fe_policy(policy::PolicyKind kind);
  policy::PolicyKind fe_policy() const { return config_.fe_policy; }
  /// Recomputes per-FE weights from the latest monitor samples (CPU folded
  /// with the controller-shard port backlog — the same signals the
  /// telemetry registry's vs<i>.cpu_util / vs<i>.port_q gauges export) and
  /// pushes the book fleet-wide. monitor_tick calls this every
  /// weight_update_period under kLoadAwareWeighted; tests and benches may
  /// call it directly between quiescent windows.
  void publish_fe_weights();
  const policy::FeWeightBook& fe_weights() const { return weight_book_; }
  /// Samples every vSwitch's CPU utilization now (what monitor_tick does
  /// before deciding) without taking any scaling action — for driving
  /// publish_fe_weights from a bench that never start()s the controller.
  void refresh_fleet_sample();
  /// §7.2: VM live migration — re-point an offloaded vNIC's BE to a new
  /// vSwitch by updating the BE location config on its FEs (takes effect in
  /// <1ms, no gateway churn needed since senders address the FEs).
  common::Status migrate_backend(tables::VnicId id, vswitch::VSwitch* new_home);

  // ---------- queries ----------
  bool is_offloaded(tables::VnicId id) const;
  std::vector<sim::NodeId> fe_nodes_of(tables::VnicId id) const;
  vswitch::VSwitch* home_of(tables::VnicId id) const;
  /// All registered vNIC ids, sorted (deterministic iteration for the
  /// invariant checker).
  std::vector<tables::VnicId> vnic_ids() const;
  /// True while an offload/fallback workflow is in flight for the vNIC —
  /// the window in which BE/FE tables are intentionally dual-running.
  bool transition_pending(tables::VnicId id) const;

  // ---------- stats ----------
  std::uint64_t offload_events() const { return offload_events_; }
  std::uint64_t fallback_events() const { return fallback_events_; }
  std::uint64_t scale_out_events() const { return scale_out_events_; }
  std::uint64_t scale_in_events() const { return scale_in_events_; }
  std::uint64_t failover_events() const { return failover_events_; }
  /// FEs evicted by the push-aside policy to make room for another vNIC.
  std::uint64_t displacement_events() const { return displacement_events_; }
  std::uint64_t fes_provisioned_total() const { return fes_provisioned_; }
  /// Activation completion times (trigger → all traffic through FEs),
  /// one sample per offload event (Table 4).
  const common::Percentiles& offload_completion() const {
    return offload_completion_;
  }

  /// Telemetry hook (null = off): control-plane workflow transitions are
  /// recorded into the flight recorder (offload/fallback begin+done,
  /// scale-out/-in, failover).
  void set_telemetry(telemetry::Hub* hub) { telemetry_ = hub; }

  /// Threaded control plane (DESIGN.md §15): when set, every controller
  /// continuation that touches cross-shard state — monitor ticks, gateway
  /// publishes, fleet-wide config applies — runs as a fenced section at an
  /// epoch barrier instead of as a plain shard-0 loop event, so the whole
  /// lifecycle (offload, churn, failover) is safe while the engine is
  /// multi-threaded. Null (the default) keeps the legacy single-loop
  /// behavior bit-identical.
  void set_fence_scheduler(sim::FenceScheduler* fences) { fences_ = fences; }

  /// Monitoring hook for experiments: called after each monitor tick with
  /// (node, cpu utilization) samples.
  using UtilizationHook =
      std::function<void(common::TimePoint, sim::NodeId, double)>;
  void set_utilization_hook(UtilizationHook hook) {
    utilization_hook_ = std::move(hook);
  }

 private:
  struct VnicRecord {
    vswitch::VnicConfig config;
    bool stateful_decap = false;
    vswitch::VSwitch* home = nullptr;
    std::vector<sim::NodeId> fe_nodes;
    bool offloaded = false;       // reaches true at begin_offload
    bool transition_pending = false;  // a workflow is in flight
  };

  struct SwitchState {
    vswitch::VSwitch* vs = nullptr;
    vswitch::UtilizationSampler sampler;
    double last_cpu_util = 0.0;
  };

  common::Duration sample_config_latency();
  void monitor_tick();
  void record_ctrl(telemetry::EventKind kind, std::uint32_t node,
                   std::uint64_t a, std::uint64_t b = 0);

  /// Schedules a control continuation that may touch cross-shard state
  /// (gateway, other shards' vSwitch config, the whole fleet): a fenced
  /// section when a scheduler is installed, a shard-0 loop event otherwise.
  /// Continuations that only mutate the controller's own records stay on
  /// loop_ unconditionally — they always execute on the controller's shard.
  void schedule_ctrl(common::TimePoint at, std::function<void()> fn);
  /// Self-rescheduling fenced monitor tick at nominal `at + k*period`
  /// (periodic loop events cannot cross the quiesce protocol).
  void schedule_monitor_tick(common::TimePoint at);

  /// Picks `count` idle vSwitches for a vNIC homed at `home`, preferring
  /// the same ToR, then the same aggregation block (App B.1), excluding
  /// nodes in `exclude`.
  std::vector<vswitch::VSwitch*> select_frontends(
      const vswitch::VSwitch& home, std::size_t count,
      const std::vector<sim::NodeId>& exclude) const;

  /// PAM-style push-aside (kPushAsideDisplacement only): when
  /// select_frontends comes up short, evicts FEs of *other* vNICs from the
  /// least-loaded busy neighbors — only from pools that stay >= min_fes —
  /// and returns those hosts for `requester`. Appends the chosen nodes to
  /// `exclude`.
  std::vector<vswitch::VSwitch*> displace_frontends(
      tables::VnicId requester, const vswitch::VSwitch& home,
      std::size_t count, std::vector<sim::NodeId>& exclude);

  /// Scale-in of one vNIC's FE on one host: update BE config + gateway
  /// after a config push, retire the FE instance after the drain interval.
  void evict_frontend(tables::VnicId id, sim::NodeId node);

  /// Pushes the current placement (FE set or BE) to the gateway.
  void publish_placement(const VnicRecord& rec);

  sim::EventLoop& loop_;
  sim::Network& network_;
  tables::VnicServerMap& gateway_;
  ControllerConfig config_;
  common::Rng rng_;

  std::vector<SwitchState> fleet_;
  std::unordered_map<sim::NodeId, std::size_t> fleet_index_;
  std::unordered_map<tables::VnicId, VnicRecord> vnics_;
  std::unordered_map<tables::VnicId, common::TimePoint> last_scale_at_;

  std::uint64_t offload_events_ = 0;
  std::uint64_t fallback_events_ = 0;
  std::uint64_t scale_out_events_ = 0;
  std::uint64_t scale_in_events_ = 0;
  std::uint64_t failover_events_ = 0;
  std::uint64_t displacement_events_ = 0;
  std::uint64_t fes_provisioned_ = 0;
  const policy::FeSelectionPolicy* policy_;
  policy::FeWeightBook weight_book_;
  common::TimePoint last_weight_push_ = 0;
  common::Percentiles offload_completion_;
  UtilizationHook utilization_hook_;
  telemetry::Hub* telemetry_ = nullptr;
  sim::FenceScheduler* fences_ = nullptr;
  bool started_ = false;
};

}  // namespace nezha::core
