#include "src/core/controller.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"
#include "src/sim/shard.h"
#include "src/telemetry/hub.h"

namespace nezha::core {

Controller::Controller(sim::EventLoop& loop, sim::Network& network,
                       tables::VnicServerMap& gateway,
                       ControllerConfig config)
    : loop_(loop), network_(network), gateway_(gateway), config_(config),
      rng_(config.seed),
      policy_(&policy::policy_for(config.fe_policy)) {}

void Controller::add_vswitch(vswitch::VSwitch* vs) {
  fleet_index_[vs->id()] = fleet_.size();
  fleet_.push_back(SwitchState{vs, {}, 0.0});
  vs->set_fe_policy(policy_);
}

void Controller::register_vnic(vswitch::VSwitch* home,
                               const vswitch::VnicConfig& vnic_config,
                               bool stateful_decap) {
  VnicRecord rec;
  rec.config = vnic_config;
  rec.stateful_decap = stateful_decap;
  rec.home = home;
  vnics_[vnic_config.id] = rec;
  gateway_.set_placement(vnic_config.addr, vnic_config.id,
                         {home->location()});
}

void Controller::record_ctrl(telemetry::EventKind kind, std::uint32_t node,
                             std::uint64_t a, std::uint64_t b) {
  if (telemetry_ == nullptr) return;
  telemetry::TraceEvent e;
  e.at = loop_.now();
  e.node = node;
  e.kind = kind;
  e.a = a;
  e.b = b;
  telemetry_->record(e);
}

void Controller::schedule_ctrl(common::TimePoint at,
                               std::function<void()> fn) {
  if (fences_ != nullptr) {
    fences_->schedule_fenced(at, std::move(fn));
  } else {
    loop_.schedule_at(at, std::move(fn));
  }
}

void Controller::schedule_monitor_tick(common::TimePoint at) {
  fences_->schedule_fenced(at, [this, at]() {
    monitor_tick();
    schedule_monitor_tick(at + config_.monitor_period);
  });
}

common::Duration Controller::sample_config_latency() {
  // Lognormal with the configured mean: mu = ln(mean) - sigma^2/2.
  const double sigma = config_.config_latency_sigma;
  const double mu = std::log(config_.config_latency_mean_ms) -
                    sigma * sigma / 2.0;
  const double ms = rng_.lognormal(mu, sigma);
  return static_cast<common::Duration>(ms * common::kMillisecond);
}

void Controller::publish_placement(const VnicRecord& rec) {
  std::vector<tables::Location> locations;
  if (rec.offloaded && !rec.fe_nodes.empty()) {
    for (sim::NodeId n : rec.fe_nodes) {
      auto it = fleet_index_.find(n);
      if (it == fleet_index_.end()) continue;
      // Publish only FEs whose instance install has completed. fe_nodes may
      // list FEs still being configured (a crash can force a republish in
      // the middle of a scale-out); advertising those would blackhole the
      // share of traffic hashed to them. The scale-out's own apply event
      // republishes the full list once the installs land.
      vswitch::VSwitch* vs = fleet_[it->second].vs;
      if (vs->frontend(rec.config.id) == nullptr) continue;
      locations.push_back(vs->location());
    }
  }
  if (locations.empty()) locations.push_back(rec.home->location());
  gateway_.set_placement(rec.config.addr, rec.config.id,
                         std::move(locations));
}

std::vector<vswitch::VSwitch*> Controller::select_frontends(
    const vswitch::VSwitch& home, std::size_t count,
    const std::vector<sim::NodeId>& exclude) const {
  std::vector<policy::PlacementCandidate> candidates;
  const auto& topo = network_.topology();
  for (const auto& state : fleet_) {
    vswitch::VSwitch* vs = state.vs;
    if (vs->id() == home.id()) continue;
    if (network_.crashed(vs->id())) continue;
    if (std::find(exclude.begin(), exclude.end(), vs->id()) != exclude.end()) {
      continue;
    }
    // Idle enough to take load without becoming a bottleneck (App B.1), and
    // with spare rule memory for the table copy.
    if (state.last_cpu_util >= config_.scale_threshold) continue;
    candidates.push_back(policy::PlacementCandidate{
        vs->id(), topo.hop_tier(home.id(), vs->id()), state.last_cpu_util,
        static_cast<double>(network_.port_queued_bytes(vs->id())),
        static_cast<std::uint32_t>(vs->frontend_count())});
  }
  // The policy orders candidates best-first; the default rank is the
  // paper's App B.1 preference (same ToR, then least-loaded).
  policy_->rank(candidates);
  std::vector<vswitch::VSwitch*> out;
  for (const auto& c : candidates) {
    if (out.size() >= count) break;
    out.push_back(fleet_[fleet_index_.at(c.node)].vs);
  }
  return out;
}

std::vector<vswitch::VSwitch*> Controller::displace_frontends(
    tables::VnicId requester, const vswitch::VSwitch& home, std::size_t count,
    std::vector<sim::NodeId>& exclude) {
  // PAM-style push-aside: every idle host is already taken (or none
  // exists), so look at busy neighbors that host FEs for *other* vNICs,
  // least-loaded first — pushing the lightest neighbor aside costs the
  // displaced pool the least. A donor pool must stay >= min_fes after the
  // eviction, which also rules out two pools endlessly displacing each
  // other's last spare FE.
  struct Victim {
    std::size_t fleet_idx;
    double util;
    std::uint32_t node;
  };
  std::vector<Victim> victims;
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    const SwitchState& state = fleet_[i];
    vswitch::VSwitch* vs = state.vs;
    if (vs->id() == home.id()) continue;
    if (network_.crashed(vs->id())) continue;
    if (std::find(exclude.begin(), exclude.end(), vs->id()) != exclude.end()) {
      continue;
    }
    if (state.last_cpu_util < config_.scale_threshold) continue;  // idle →
    if (vs->frontend_count() == 0) continue;  // select_frontends territory
    victims.push_back(Victim{i, state.last_cpu_util, vs->id()});
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              if (a.util != b.util) return a.util < b.util;
              return a.node < b.node;
            });

  std::vector<vswitch::VSwitch*> out;
  for (const Victim& victim : victims) {
    if (out.size() >= count) break;
    vswitch::VSwitch* host = fleet_[victim.fleet_idx].vs;
    // Deterministic donor choice on this host: the vNIC with the largest
    // pool that can spare an FE (ties → smallest vNIC id). vnics_ is
    // unordered, so iterate ids sorted.
    tables::VnicId donor = 0;
    std::size_t donor_pool = 0;
    for (tables::VnicId vid : vnic_ids()) {
      if (vid == requester) continue;
      const VnicRecord& rec = vnics_.at(vid);
      if (rec.transition_pending) continue;
      if (std::find(rec.fe_nodes.begin(), rec.fe_nodes.end(), host->id()) ==
          rec.fe_nodes.end()) {
        continue;
      }
      if (rec.fe_nodes.size() <= config_.min_fes) continue;
      if (rec.fe_nodes.size() > donor_pool) {
        donor = vid;
        donor_pool = rec.fe_nodes.size();
      }
    }
    if (donor_pool == 0) continue;
    evict_frontend(donor, host->id());
    ++displacement_events_;
    record_ctrl(telemetry::EventKind::kCtrlDisplace, host->id(), requester,
                donor);
    NEZHA_LOG_INFO("displaced vnic " + std::to_string(donor) + " FE on node " +
                   std::to_string(host->id()) + " for vnic " +
                   std::to_string(requester));
    out.push_back(host);
    exclude.push_back(host->id());
  }
  return out;
}

void Controller::evict_frontend(tables::VnicId id, sim::NodeId node) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return;
  VnicRecord& rec = it->second;
  auto pos = std::find(rec.fe_nodes.begin(), rec.fe_nodes.end(), node);
  if (pos == rec.fe_nodes.end()) return;
  rec.fe_nodes.erase(pos);

  // Same shape as scale_in_vswitch: update BE config + gateway after one
  // config push; retain the FE's tables until stale senders drain
  // (learning interval + RTT, §4.3).
  vswitch::VSwitch* home = rec.home;
  const common::TimePoint apply_at = loop_.now() + sample_config_latency();
  // The apply touches the home vSwitch (possibly another shard's) and the
  // gateway senders read fleet-wide → fenced under a threaded engine.
  schedule_ctrl(apply_at, [this, home, id]() {
    auto rit = vnics_.find(id);
    if (rit == vnics_.end()) return;
    std::vector<tables::Location> locations;
    for (sim::NodeId n : rit->second.fe_nodes) {
      auto fit = fleet_index_.find(n);
      if (fit != fleet_index_.end()) {
        locations.push_back(fleet_[fit->second].vs->location());
      }
    }
    home->update_fe_locations(id, locations);
    publish_placement(rit->second);
  });
  const common::TimePoint remove_at =
      apply_at + config_.learning_interval + config_.rtt_allowance;
  auto fe_it = fleet_index_.find(node);
  if (fe_it != fleet_index_.end()) {
    vswitch::VSwitch* fe = fleet_[fe_it->second].vs;
    // Long drain tail → the table drop runs on the FE's own loop.
    fe->loop().schedule_at(remove_at, [fe, id]() { fe->remove_frontend(id); });
  }
}

common::Status Controller::trigger_offload(tables::VnicId id,
                                           std::size_t num_fes) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return common::make_error("unknown vnic");
  VnicRecord& rec = it->second;
  if (rec.offloaded || rec.transition_pending) {
    return common::make_error("offload already active/in flight");
  }
  vswitch::Vnic* v = rec.home->vnic(id);
  if (v == nullptr || v->mode() != vswitch::VnicMode::kLocal) {
    return common::make_error("vnic not in local mode");
  }
  if (num_fes == 0) num_fes = config_.initial_fes;

  std::vector<sim::NodeId> exclude;
  auto fes = select_frontends(*rec.home, num_fes, exclude);
  if (fes.size() < num_fes && policy_->displaces()) {
    for (vswitch::VSwitch* fe : fes) exclude.push_back(fe->id());
    auto pushed =
        displace_frontends(id, *rec.home, num_fes - fes.size(), exclude);
    fes.insert(fes.end(), pushed.begin(), pushed.end());
  }
  if (fes.size() < num_fes) {
    return common::make_error("not enough idle vSwitches for FE pool");
  }

  const common::TimePoint t0 = loop_.now();
  rec.transition_pending = true;
  record_ctrl(telemetry::EventKind::kCtrlOffloadBegin, rec.home->id(), id,
              fes.size());

  // Dual-running stage (Fig 7):
  //  (1) configure rule tables in every selected FE,
  //  (2) configure BE/FE locations on both sides,
  //  (3) update the gateway's vNIC-server table.
  // Each push carries a sampled config latency; the stage completes when the
  // slowest sender has re-learned the placement.
  common::TimePoint fe_ready = t0;
  const tables::RuleTableSet& rules = *v->rules();
  std::vector<tables::Location> fe_locations;
  for (vswitch::VSwitch* fe : fes) {
    const common::TimePoint at = t0 + sample_config_latency();
    fe_ready = std::max(fe_ready, at);
    fe_locations.push_back(fe->location());
    vswitch::VSwitch* fe_ptr = fe;
    // Copy the rules now (controller snapshot) and install at the config
    // arrival time — on the FE's own loop, so the install is serialized
    // with that vSwitch's packet processing on a sharded engine.
    fe_ptr->loop().schedule_at(at, [fe_ptr, cfg = rec.config, rules, stateful =
                                    rec.stateful_decap,
                                    be = rec.home->location()]() {
      (void)fe_ptr->install_frontend(cfg, rules, be, stateful);
    });
    rec.fe_nodes.push_back(fe->id());
  }
  fes_provisioned_ += fes.size();

  // (2) BE configuration lands after the FEs are live. The vSwitch
  // mutation goes on the home's loop; the controller's own record flips on
  // its loop at the same instant (the two touch disjoint state).
  const common::TimePoint be_ready = fe_ready + sample_config_latency();
  vswitch::VSwitch* home = rec.home;
  const common::TimePoint dual_until =
      be_ready + config_.learning_interval + config_.rtt_allowance;
  home->loop().schedule_at(be_ready, [home, id, fe_locations, dual_until]() {
    (void)home->begin_offload(id, fe_locations, dual_until);
  });
  loop_.schedule_at(be_ready, [this, id]() {
    auto rit = vnics_.find(id);
    if (rit != vnics_.end()) rit->second.offloaded = true;
  });

  // (3) Gateway update, then the learning interval bounds sender staleness.
  // Senders on every shard read the gateway → fenced under threads.
  const common::TimePoint gw_done = be_ready + sample_config_latency();
  schedule_ctrl(gw_done, [this, id]() {
    auto rit = vnics_.find(id);
    if (rit != vnics_.end()) publish_placement(rit->second);
  });

  const common::TimePoint complete = gw_done + config_.learning_interval;
  offload_completion_.add(common::to_millis(complete - t0));

  // Final stage: drop the retained local tables once in-flight stale
  // packets have drained (learning interval + RTT, §4.2.1). This tail
  // outlives any reasonable control window, so it routinely fires while
  // the engine is multi-threaded — the table drop MUST run on the home's
  // loop (freeing rule tables under a concurrent lookup was the one data
  // race TSan found in the whole sharded engine).
  const common::TimePoint drop_at = complete + config_.rtt_allowance;
  home->loop().schedule_at(drop_at,
                           [home, id]() { home->finalize_offload(id); });
  loop_.schedule_at(drop_at, [this, home, id]() {
    auto rit = vnics_.find(id);
    if (rit != vnics_.end()) rit->second.transition_pending = false;
    record_ctrl(telemetry::EventKind::kCtrlOffloadDone, home->id(), id,
                rit != vnics_.end() ? rit->second.fe_nodes.size() : 0);
  });

  ++offload_events_;
  NEZHA_LOG_INFO("offload vnic " + std::to_string(id) + " to " +
                 std::to_string(fes.size()) + " FEs");
  return common::Status::ok_status();
}

common::Status Controller::trigger_fallback(tables::VnicId id) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return common::make_error("unknown vnic");
  VnicRecord& rec = it->second;
  if (!rec.offloaded || rec.transition_pending) {
    return common::make_error("vnic not offloaded / transition in flight");
  }
  // Estimate: fallback only if the home vSwitch can absorb the load (§4.2.2).
  auto fit = fleet_index_.find(rec.home->id());
  if (fit != fleet_index_.end() &&
      fleet_[fit->second].last_cpu_util >= config_.fallback_safe_level) {
    return common::make_error("home vSwitch too loaded for fallback");
  }

  const common::TimePoint t0 = loop_.now();
  rec.transition_pending = true;
  vswitch::VSwitch* home = rec.home;
  record_ctrl(telemetry::EventKind::kCtrlFallbackBegin, home->id(), id);

  // Dual-running: restore local tables, then point the gateway back at the
  // BE; FEs keep serving stale senders until learning completes. The
  // local-table restore mutates the home vSwitch → home's loop.
  const common::TimePoint local_ready = t0 + sample_config_latency();
  const common::TimePoint dual_until =
      local_ready + config_.learning_interval + config_.rtt_allowance;
  home->loop().schedule_at(local_ready, [home, id, dual_until]() {
    (void)home->begin_fallback(id, dual_until);
  });
  const common::TimePoint gw_done = local_ready + sample_config_latency();
  schedule_ctrl(gw_done, [this, id]() {
    auto rit = vnics_.find(id);
    if (rit == vnics_.end()) return;
    rit->second.offloaded = false;  // placement reverts to the BE
    publish_placement(rit->second);
  });

  // Drain tail: like offload finalize, this fires long after the control
  // window closes, so every vSwitch mutation is scheduled on its owner's
  // loop (fleet membership is fixed after setup, so resolving the FE
  // pointers now is equivalent to resolving them at fire time).
  const common::TimePoint complete =
      gw_done + config_.learning_interval + config_.rtt_allowance;
  home->loop().schedule_at(complete,
                           [home, id]() { home->finalize_fallback(id); });
  for (sim::NodeId n : rec.fe_nodes) {
    auto fit2 = fleet_index_.find(n);
    if (fit2 == fleet_index_.end()) continue;
    vswitch::VSwitch* fe = fleet_[fit2->second].vs;
    fe->loop().schedule_at(complete, [fe, id]() { fe->remove_frontend(id); });
  }
  loop_.schedule_at(complete, [this, home, id]() {
    auto rit = vnics_.find(id);
    if (rit != vnics_.end()) {
      rit->second.fe_nodes.clear();
      rit->second.transition_pending = false;
    }
    record_ctrl(telemetry::EventKind::kCtrlFallbackDone, home->id(), id);
  });

  ++fallback_events_;
  return common::Status::ok_status();
}

common::Status Controller::scale_out(
    tables::VnicId id, std::size_t additional,
    const std::vector<sim::NodeId>& extra_exclude) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return common::make_error("unknown vnic");
  VnicRecord& rec = it->second;
  if (!rec.offloaded) return common::make_error("vnic not offloaded");

  std::vector<sim::NodeId> exclude = rec.fe_nodes;
  exclude.insert(exclude.end(), extra_exclude.begin(), extra_exclude.end());
  auto extra = select_frontends(*rec.home, additional, exclude);
  if (extra.size() < additional && policy_->displaces()) {
    for (vswitch::VSwitch* fe : extra) exclude.push_back(fe->id());
    auto pushed =
        displace_frontends(id, *rec.home, additional - extra.size(), exclude);
    extra.insert(extra.end(), pushed.begin(), pushed.end());
  }
  if (extra.empty()) return common::make_error("no idle vSwitches available");

  const common::TimePoint t0 = loop_.now();
  vswitch::Vnic* v = rec.home->vnic(id);
  // The BE no longer holds the rule tables; clone from an existing FE.
  const tables::RuleTableSet* source = nullptr;
  for (sim::NodeId n : rec.fe_nodes) {
    auto fit = fleet_index_.find(n);
    if (fit == fleet_index_.end()) continue;
    if (auto* fe = fleet_[fit->second].vs->frontend(id)) {
      source = &fe->rules;
      break;
    }
  }
  if (source == nullptr && v != nullptr && v->rules() != nullptr) {
    source = v->rules();
  }
  if (source == nullptr) return common::make_error("no rule source for clone");

  common::TimePoint fe_ready = t0;
  for (vswitch::VSwitch* fe : extra) {
    const common::TimePoint at = t0 + sample_config_latency();
    fe_ready = std::max(fe_ready, at);
    fe->loop().schedule_at(at, [fe, cfg = rec.config, rules = *source,
                                stateful = rec.stateful_decap,
                                be = rec.home->location()]() {
      (void)fe->install_frontend(cfg, rules, be, stateful);
    });
    rec.fe_nodes.push_back(fe->id());
  }
  fes_provisioned_ += extra.size();

  // Insert the new locations into the BE's FE-location config and the
  // gateway's vNIC-server table (§4.3).
  const common::TimePoint apply_at = fe_ready + sample_config_latency();
  vswitch::VSwitch* home = rec.home;
  schedule_ctrl(apply_at, [this, home, id]() {
    auto rit = vnics_.find(id);
    if (rit == vnics_.end()) return;
    std::vector<tables::Location> locations;
    for (sim::NodeId n : rit->second.fe_nodes) {
      auto fit = fleet_index_.find(n);
      if (fit != fleet_index_.end()) {
        locations.push_back(fleet_[fit->second].vs->location());
      }
    }
    home->update_fe_locations(id, locations);
    publish_placement(rit->second);
  });

  ++scale_out_events_;
  record_ctrl(telemetry::EventKind::kCtrlScaleOut, rec.home->id(), id,
              extra.size());
  return common::Status::ok_status();
}

void Controller::scale_in_vswitch(sim::NodeId node) {
  bool any = false;
  std::uint64_t removed = 0;
  for (auto& [id, rec] : vnics_) {
    auto pos = std::find(rec.fe_nodes.begin(), rec.fe_nodes.end(), node);
    if (pos == rec.fe_nodes.end()) continue;
    any = true;
    ++removed;
    rec.fe_nodes.erase(pos);

    // Update BE config + gateway now; retain the FE's tables until stale
    // senders drain (learning interval + RTT, §4.3).
    vswitch::VSwitch* home = rec.home;
    const tables::VnicId vnic_id = id;
    const common::TimePoint apply_at = loop_.now() + sample_config_latency();
    schedule_ctrl(apply_at, [this, home, vnic_id]() {
      auto rit = vnics_.find(vnic_id);
      if (rit == vnics_.end()) return;
      std::vector<tables::Location> locations;
      for (sim::NodeId n : rit->second.fe_nodes) {
        auto fit = fleet_index_.find(n);
        if (fit != fleet_index_.end()) {
          locations.push_back(fleet_[fit->second].vs->location());
        }
      }
      home->update_fe_locations(vnic_id, locations);
      publish_placement(rit->second);
    });
    const common::TimePoint remove_at =
        apply_at + config_.learning_interval + config_.rtt_allowance;
    // Long drain tail → the table drop runs on the FE's own loop.
    auto fe_it = fleet_index_.find(node);
    if (fe_it != fleet_index_.end()) {
      vswitch::VSwitch* fe = fleet_[fe_it->second].vs;
      fe->loop().schedule_at(remove_at, [fe, vnic_id]() {
        fe->remove_frontend(vnic_id);
      });
    }

    // Scale-in may trigger scale-out elsewhere if the pool is now too small;
    // the vSwitch that just prioritized local traffic is not re-selected.
    if (rec.fe_nodes.size() < config_.min_fes) {
      (void)scale_out(id, config_.min_fes - rec.fe_nodes.size(), {node});
    }
  }
  if (any) {
    ++scale_in_events_;
    record_ctrl(telemetry::EventKind::kCtrlScaleIn, node, removed);
  }
}

void Controller::handle_fe_crash(sim::NodeId node) {
  bool any = false;
  for (auto& [id, rec] : vnics_) {
    auto pos = std::find(rec.fe_nodes.begin(), rec.fe_nodes.end(), node);
    if (pos == rec.fe_nodes.end()) continue;
    any = true;
    rec.fe_nodes.erase(pos);

    // Failover (§4.4): delete the faulty FE from the BE's config and the
    // gateway immediately (one config push); add a replacement only when
    // the pool would drop below the minimum.
    vswitch::VSwitch* home = rec.home;
    std::vector<tables::Location> locations;
    for (sim::NodeId n : rec.fe_nodes) {
      auto fit = fleet_index_.find(n);
      if (fit == fleet_index_.end()) continue;
      // Same filter as publish_placement: an FE from an in-flight scale-out
      // has no instance yet and must not receive sprayed traffic.
      vswitch::VSwitch* vs = fleet_[fit->second].vs;
      if (vs->frontend(id) == nullptr) continue;
      locations.push_back(vs->location());
    }
    home->update_fe_locations(id, locations);
    publish_placement(rec);

    if (rec.fe_nodes.size() < config_.min_fes) {
      (void)scale_out(id, config_.min_fes - rec.fe_nodes.size(), {node});
    }
  }
  if (any) {
    ++failover_events_;
    record_ctrl(telemetry::EventKind::kCtrlFeCrash, node, node);
    NEZHA_LOG_WARN("failover: removed crashed FE node " +
                   std::to_string(node));
  }
}

void Controller::handle_link_failure(tables::VnicId id, sim::NodeId fe_node) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return;
  VnicRecord& rec = it->second;
  auto pos = std::find(rec.fe_nodes.begin(), rec.fe_nodes.end(), fe_node);
  if (pos == rec.fe_nodes.end()) return;
  rec.fe_nodes.erase(pos);

  std::vector<tables::Location> locations;
  for (sim::NodeId n : rec.fe_nodes) {
    auto fit = fleet_index_.find(n);
    if (fit == fleet_index_.end()) continue;
    vswitch::VSwitch* vs = fleet_[fit->second].vs;
    if (vs->frontend(id) == nullptr) continue;
    locations.push_back(vs->location());
  }
  rec.home->update_fe_locations(id, locations);
  publish_placement(rec);
  // The FE instance itself stays configured on the (healthy but
  // unreachable) host; the controller retires it like a scale-in.
  const common::TimePoint remove_at =
      loop_.now() + config_.learning_interval + config_.rtt_allowance;
  auto fe_it = fleet_index_.find(fe_node);
  if (fe_it != fleet_index_.end()) {
    vswitch::VSwitch* fe = fleet_[fe_it->second].vs;
    fe->loop().schedule_at(remove_at,
                           [fe, id]() { fe->remove_frontend(id); });
  }
  if (rec.fe_nodes.size() < config_.min_fes) {
    (void)scale_out(id, config_.min_fes - rec.fe_nodes.size(), {fe_node});
  }
  ++failover_events_;
  record_ctrl(telemetry::EventKind::kCtrlLinkFailover, fe_node, id, fe_node);
}

void Controller::reseed_fe_hash(std::uint64_t seed) {
  for (auto& state : fleet_) state.vs->set_fe_hash_seed(seed);
}

void Controller::set_fe_policy(policy::PolicyKind kind) {
  config_.fe_policy = kind;
  policy_ = &policy::policy_for(kind);
  for (auto& state : fleet_) {
    state.vs->set_fe_policy(policy_);
    state.vs->set_fe_weights(weight_book_);
  }
}

void Controller::refresh_fleet_sample() {
  const common::TimePoint now = loop_.now();
  for (auto& state : fleet_) {
    if (network_.crashed(state.vs->id())) continue;
    state.last_cpu_util = state.sampler.sample(state.vs->cpu(), now);
  }
}

void Controller::publish_fe_weights() {
  ++weight_book_.version;
  for (const auto& state : fleet_) {
    const vswitch::VSwitch* vs = state.vs;
    // Fold CPU with the egress-port backlog (the controller's shard view;
    // nodes owned by other shards read 0 — conservative) so either
    // saturated resource downweights the host. Quantize to [1, kMaxWeight]:
    // never 0, so an FE still serving stale senders keeps draining.
    const double queue = std::min(
        1.0, network_.port_queued_bytes(vs->id()) /
                 policy::LoadAwareWeightedPolicy::kQueueNormBytes);
    const double load = std::min(1.0, std::max(state.last_cpu_util, queue));
    const auto weight = static_cast<std::uint16_t>(
        1 + std::lround((policy::FeWeightBook::kMaxWeight - 1) * (1.0 - load)));
    weight_book_.set(vs->location().ip, weight);
  }
  for (auto& state : fleet_) state.vs->set_fe_weights(weight_book_);
}

common::Status Controller::migrate_backend(tables::VnicId id,
                                           vswitch::VSwitch* new_home) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return common::make_error("unknown vnic");
  VnicRecord& rec = it->second;
  if (!rec.offloaded) {
    return common::make_error("BE migration requires an offloaded vnic");
  }
  vswitch::VSwitch* old_home = rec.home;
  vswitch::Vnic* v = old_home->vnic(id);
  if (v == nullptr) return common::make_error("vnic missing at home");

  // Create the vNIC at the new home in offloaded (BE) shape.
  (void)new_home->add_vnic(rec.config, rec.stateful_decap);
  std::vector<tables::Location> fe_locations;
  for (sim::NodeId n : rec.fe_nodes) {
    auto fit = fleet_index_.find(n);
    if (fit != fleet_index_.end()) {
      fe_locations.push_back(fleet_[fit->second].vs->location());
    }
  }
  (void)new_home->begin_offload(id, fe_locations, loop_.now());
  new_home->finalize_offload(id);

  // §7.2: only the BE-location config on the FEs changes; this takes effect
  // in <1ms, independent of VM size.
  for (sim::NodeId n : rec.fe_nodes) {
    auto fit = fleet_index_.find(n);
    if (fit == fleet_index_.end()) continue;
    if (auto* fe = fleet_[fit->second].vs->frontend(id)) {
      fe->be_location = new_home->location();
    }
  }
  old_home->remove_vnic(id);
  rec.home = new_home;
  return common::Status::ok_status();
}

bool Controller::is_offloaded(tables::VnicId id) const {
  auto it = vnics_.find(id);
  return it != vnics_.end() && it->second.offloaded;
}

std::vector<sim::NodeId> Controller::fe_nodes_of(tables::VnicId id) const {
  auto it = vnics_.find(id);
  return it == vnics_.end() ? std::vector<sim::NodeId>{} : it->second.fe_nodes;
}

vswitch::VSwitch* Controller::home_of(tables::VnicId id) const {
  auto it = vnics_.find(id);
  return it == vnics_.end() ? nullptr : it->second.home;
}

std::vector<tables::VnicId> Controller::vnic_ids() const {
  std::vector<tables::VnicId> ids;
  ids.reserve(vnics_.size());
  for (const auto& [id, rec] : vnics_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool Controller::transition_pending(tables::VnicId id) const {
  auto it = vnics_.find(id);
  return it != vnics_.end() && it->second.transition_pending;
}

void Controller::start() {
  if (started_) return;
  started_ = true;
  if (fences_ != nullptr) {
    // Monitoring reads every shard's vSwitch CPU and can launch any
    // workflow → the tick itself is a fenced section, self-rescheduling at
    // nominal multiples of the period (the barrier quantizes actual
    // execution to epoch boundaries, identically for every thread count).
    schedule_monitor_tick(loop_.now() + config_.monitor_period);
  } else {
    loop_.schedule_periodic(config_.monitor_period,
                            [this]() { monitor_tick(); });
  }
}

void Controller::monitor_tick() {
  const common::TimePoint now = loop_.now();
  for (auto& state : fleet_) {
    vswitch::VSwitch* vs = state.vs;
    if (network_.crashed(vs->id())) continue;
    const double cpu_util = state.sampler.sample(vs->cpu(), now);
    state.last_cpu_util = cpu_util;
    const double mem_util = std::max(vs->rule_memory().utilization(),
                                     vs->session_memory().utilization());
    const double util = std::max(cpu_util, mem_util);
    if (utilization_hook_) utilization_hook_(now, vs->id(), cpu_util);

    const double fe_share = vs->fe_cycles();
    const double local_share = vs->local_cycles();
    vs->reset_cycle_attribution();

    if (util > config_.offload_threshold && config_.auto_offload) {
      // Offload the heaviest local vNICs until utilization is projected to
      // fall to a safe level (§4.2.1). Heaviness here: rule memory (the
      // measurable slow-path footprint) — the CPS share follows the vNIC
      // under test in all our workloads.
      struct Cand { tables::VnicId id; std::size_t weight; };
      std::vector<Cand> cands;
      for (auto& [id, rec] : vnics_) {
        if (rec.home != vs || rec.offloaded || rec.transition_pending) continue;
        vswitch::Vnic* v = vs->vnic(id);
        if (v == nullptr || v->rules() == nullptr) continue;
        cands.push_back(Cand{id, v->rules()->memory_bytes()});
      }
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) { return a.weight > b.weight; });
      if (!cands.empty()) (void)trigger_offload(cands.front().id);
    } else if (util > config_.scale_threshold && config_.auto_scale &&
               vs->frontend_count() > 0) {
      // Fig 8: between the scale and offload thresholds on an FE-hosting
      // vSwitch, the source of pressure decides the action.
      if (fe_share > local_share) {
        // Remote offloading dominates → add FEs for the vNICs served here.
        // The per-vNIC cooldown keeps one alert round from growing the same
        // pool once per alerting host.
        for (auto& [id, rec] : vnics_) {
          if (std::find(rec.fe_nodes.begin(), rec.fe_nodes.end(), vs->id()) ==
              rec.fe_nodes.end()) {
            continue;
          }
          auto lit = last_scale_at_.find(id);
          if (lit != last_scale_at_.end() &&
              now - lit->second < config_.scale_cooldown) {
            continue;
          }
          if (scale_out(id, config_.scale_out_step).ok()) {
            last_scale_at_[id] = now;
          }
        }
      } else {
        // Local traffic dominates → evict all FEs to prioritize local vNICs.
        scale_in_vswitch(vs->id());
      }
    }
  }

  if (policy_->kind() == policy::PolicyKind::kLoadAwareWeighted &&
      now - last_weight_push_ >= config_.weight_update_period) {
    publish_fe_weights();
    last_weight_push_ = now;
  }
}

}  // namespace nezha::core
