// FE-BE mutual link probing (§C.1).
//
// The centralized monitor only establishes that a vSwitch is alive; it says
// nothing about the specific BE↔FE path. Each BE therefore pings its FEs
// directly (at a much lower frequency than the central monitor — complete
// inter-server disconnection is rare thanks to fabric fast-failover), and a
// persistent probe failure removes that FE from this vNIC's pool even
// though the FE looks healthy from the outside.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/time.h"
#include "src/sim/network.h"
#include "src/vswitch/vswitch.h"

namespace nezha::core {

struct LinkProberConfig {
  common::Duration probe_interval = common::seconds(2);
  common::Duration probe_timeout = common::milliseconds(500);
  int miss_threshold = 2;
};

class LinkProber {
 public:
  LinkProber(sim::EventLoop& loop, sim::Network& network,
             LinkProberConfig config = {});

  /// Called when the path between a BE and one of its FEs is declared dead:
  /// (vnic, fe_node).
  using LinkFailureFn = std::function<void(tables::VnicId, sim::NodeId)>;
  void set_failure_callback(LinkFailureFn fn) { on_failure_ = std::move(fn); }

  /// Starts probing the path between `be` and FE `fe` for `vnic`.
  /// Registers the reply handler on the BE vSwitch.
  void watch(tables::VnicId vnic, vswitch::VSwitch* be, sim::NodeId fe_node,
             net::Ipv4Addr fe_ip);
  void unwatch(tables::VnicId vnic, sim::NodeId fe_node);

  void start();

  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t failures_declared() const { return failures_; }

 private:
  struct PathKey {
    tables::VnicId vnic;
    sim::NodeId fe;
    bool operator==(const PathKey&) const = default;
  };
  struct PathKeyHash {
    std::size_t operator()(const PathKey& k) const noexcept {
      return std::hash<std::uint64_t>{}((k.vnic << 20) ^ k.fe);
    }
  };
  struct Path {
    vswitch::VSwitch* be = nullptr;
    net::Ipv4Addr fe_ip;
    int misses = 0;
    std::uint64_t outstanding = 0;
    bool reply_seen = false;
    bool dead = false;
  };

  void probe_all();
  void hook_be(vswitch::VSwitch* be);

  sim::EventLoop& loop_;
  sim::Network& network_;
  LinkProberConfig config_;
  std::unordered_map<PathKey, Path, PathKeyHash> paths_;
  std::unordered_map<std::uint64_t, PathKey> probe_owner_;
  std::unordered_map<sim::NodeId, bool> hooked_;
  LinkFailureFn on_failure_;
  std::uint64_t next_probe_id_ = 1ull << 32;  // disjoint from monitor ids
  std::uint64_t probes_sent_ = 0;
  std::uint64_t failures_ = 0;
  bool started_ = false;
};

}  // namespace nezha::core
