// Telemetry hub: the single handle the simulation components hold.
//
// Owns the flight recorder and the metrics registry, plus the packet-id
// stamper. Components keep a `Hub*` (null when telemetry is disabled) and
// guard every record site with one pointer test — with telemetry off the
// datapath pays exactly that branch and nothing else.
//
// Packet-id stamping: Packet::id defaults to 0 and nothing in the
// simulation assigns it except the health monitor, whose probe ids are
// small integers starting at 1. The hub therefore hands out ids from
// 2^32 upward — collision-free with probes — and only to packets that do
// not already carry an id, so an id assigned at the VM edge survives
// encap, the BE→FE detour, and decap unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "src/common/time.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo.h"

namespace nezha::net {
struct Packet;
}

namespace nezha::telemetry {

struct TelemetryConfig {
  bool enabled = false;       // master switch; off => Testbed wires no Hub
  bool trace = true;          // flight recorder on (metrics stay on always)
  std::size_t events_per_node = 1 << 14;  // ring capacity per node
  common::Duration sample_period = common::milliseconds(100);
  std::size_t max_samples = 1024;  // time-series rows preallocated
  SloConfig slo;                   // thresholds for the in-sim SLO tracker
};

class Hub {
 public:
  Hub(std::size_t num_nodes, const TelemetryConfig& cfg);

  /// Hot path: appends to the flight recorder when tracing is enabled.
  void record(TraceEvent e) {
    if (trace_on_) recorder_.record(e);
  }
  bool trace_on() const { return trace_on_; }

  /// Assigns a globally unique packet id (from 2^32 up, clear of the
  /// monitor's probe ids) unless the packet already has one. Returns the
  /// packet's id either way.
  std::uint64_t stamp(net::Packet& pkt);

  /// Sharded testbeds give each shard's hub a disjoint id stream so a
  /// packet stamped on one shard never collides with another's (stream s
  /// hands out ids from 2^32 + s * 2^40). Call before any stamping.
  void set_packet_id_stream(std::uint32_t stream) {
    next_packet_id_ = (std::uint64_t{1} << 32) +
                      (static_cast<std::uint64_t>(stream) << 40);
  }

  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const TelemetryConfig& config() const { return cfg_; }

  void start_sampler(sim::EventLoop& loop) {
    metrics_.start_sampler(loop, cfg_.sample_period, cfg_.max_samples);
  }
  void stop_sampler() { metrics_.stop_sampler(); }

  /// Constructs the SLO tracker against the current registry contents —
  /// call after every gauge/histogram is registered and before
  /// start_sampler(). No-op when cfg.slo.enabled is false.
  void enable_slo(const SloWiring& wiring) {
    if (cfg_.slo.enabled && slo_ == nullptr) {
      slo_ = std::make_unique<SloTracker>(*this, cfg_.slo, wiring);
    }
  }
  SloTracker* slo() { return slo_.get(); }
  const SloTracker* slo() const { return slo_.get(); }

  /// Time-series + counters + histograms as JSON (see README schema).
  void write_json(std::ostream& os) const { metrics_.write_json(os); }
  /// Binary flight-recorder dump (see FlightRecorder::dump).
  void dump_trace(std::ostream& os) const { recorder_.dump(os); }

 private:
  TelemetryConfig cfg_;
  FlightRecorder recorder_;
  MetricsRegistry metrics_;
  std::unique_ptr<SloTracker> slo_;
  bool trace_on_;
  std::uint64_t next_packet_id_;
};

}  // namespace nezha::telemetry
