#include "src/telemetry/trace_query.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "src/telemetry/flight_recorder.h"

namespace nezha::telemetry {

common::Result<std::vector<TraceEvent>> load_trace(std::istream& is) {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t record_size = 0;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  is.read(reinterpret_cast<char*>(&record_size), sizeof(record_size));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is) return common::make_error("trace: truncated header");
  if (magic != kTraceMagic) return common::make_error("trace: bad magic");
  if (version != kTraceFormatVersion) {
    return common::make_error("trace: unsupported version " +
                              std::to_string(version));
  }
  if (record_size != sizeof(TraceEvent)) {
    return common::make_error("trace: record size mismatch");
  }
  std::vector<TraceEvent> events(count);
  if (count != 0) {
    is.read(reinterpret_cast<char*>(events.data()),
            static_cast<std::streamsize>(count * sizeof(TraceEvent)));
    if (!is) return common::make_error("trace: truncated body");
  }
  return events;
}

common::Result<std::vector<TraceEvent>> load_trace_file(
    const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return common::make_error("trace: cannot open " + path);
  return load_trace(f);
}

std::vector<TraceEvent> filter_flow(const std::vector<TraceEvent>& events,
                                    std::uint64_t flow) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.flow == flow) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> filter_packet(const std::vector<TraceEvent>& events,
                                      std::uint64_t packet_id) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.packet_id == packet_id) out.push_back(e);
  }
  return out;
}

std::vector<SetupLatency> slowest_setups(const std::vector<TraceEvent>& events,
                                         std::size_t k) {
  // Per flow: the first table.miss, then the first vm.deliver at or after
  // it. std::map keeps flow iteration deterministic.
  struct Pending {
    common::TimePoint miss_at = 0;
    bool have_miss = false;
    bool done = false;
    common::TimePoint deliver_at = 0;
  };
  std::map<std::uint64_t, Pending> flows;
  for (const TraceEvent& e : events) {
    if (e.flow == 0) continue;
    if (e.kind == EventKind::kTableMiss) {
      Pending& p = flows[e.flow];
      if (!p.have_miss) {
        p.have_miss = true;
        p.miss_at = e.at;
      }
    } else if (e.kind == EventKind::kVmDeliver) {
      auto it = flows.find(e.flow);
      if (it != flows.end() && it->second.have_miss && !it->second.done &&
          e.at >= it->second.miss_at) {
        it->second.done = true;
        it->second.deliver_at = e.at;
      }
    }
  }
  std::vector<SetupLatency> out;
  for (const auto& [flow, p] : flows) {
    if (p.done) out.push_back(SetupLatency{flow, p.miss_at, p.deliver_at});
  }
  std::sort(out.begin(), out.end(),
            [](const SetupLatency& a, const SetupLatency& b) {
              if (a.latency() != b.latency()) return a.latency() > b.latency();
              return a.flow < b.flow;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<ModeTransition> audit_vswitch(
    const std::vector<TraceEvent>& events, std::uint32_t node) {
  // Legal FSM cycle: 0 → 1 → 2 → 3 → 0 (vswitch::VnicMode values).
  const auto legal_edge = [](std::uint8_t from, std::uint8_t to) {
    return (from == 0 && to == 1) || (from == 1 && to == 2) ||
           (from == 2 && to == 3) || (from == 3 && to == 0);
  };
  std::map<std::uint64_t, std::uint8_t> last_state;  // vnic -> last `to`
  std::vector<ModeTransition> out;
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::kVnicMode || e.node != node) continue;
    ModeTransition t;
    t.at = e.at;
    t.vnic = e.a;
    t.from = mode_from(e.detail);
    t.to = mode_to(e.detail);
    auto it = last_state.find(t.vnic);
    const bool continuous = it == last_state.end() || it->second == t.from;
    t.legal = legal_edge(t.from, t.to) && continuous;
    last_state[t.vnic] = t.to;
    out.push_back(t);
  }
  return out;
}

PathCheck check_be_fe_peer_path(const std::vector<TraceEvent>& events,
                                std::uint64_t flow) {
  PathCheck pc;
  pc.timeline = filter_flow(events, flow);
  for (const TraceEvent& e : pc.timeline) {
    switch (e.kind) {
      case EventKind::kCpuOpStart:
        if (e.detail == static_cast<std::uint8_t>(Stage::kBeTx) &&
            !pc.have_be_tx) {
          pc.have_be_tx = true;
          pc.be_node = e.node;
        } else if (e.detail == static_cast<std::uint8_t>(Stage::kFeTx) &&
                   pc.have_redirect && !pc.have_fe_hop) {
          pc.have_fe_hop = true;
          pc.fe_node = e.node;
        }
        break;
      case EventKind::kBeFeRedirect:
        // The BE records the redirect and the be_tx CPU charge at the same
        // instant (one packet, one node); their relative order is an
        // implementation detail, so the redirect leg does not require prior
        // be_tx evidence — complete() still demands both.
        pc.have_redirect = true;
        break;
      case EventKind::kVmDeliver:
        if (pc.have_fe_hop && !pc.have_peer_deliver && e.node != pc.be_node &&
            e.node != pc.fe_node) {
          pc.have_peer_deliver = true;
          pc.peer_node = e.node;
        }
        break;
      default:
        break;
    }
  }
  return pc;
}

void print_timeline(std::ostream& os, const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    os << to_string(e) << "\n";
  }
}

}  // namespace nezha::telemetry
