#include "src/telemetry/trace_event.h"

#include <cstdio>

namespace nezha::telemetry {

std::string_view kind_name(EventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kEventKindNames.size() ? kEventKindNames[i] : "?";
}

std::string_view stage_name(std::uint8_t detail) {
  return detail < kStageNames.size() ? kStageNames[detail] : "?";
}

std::string_view drop_reason_name(std::uint8_t detail) {
  return detail < kDropReasonNames.size() ? kDropReasonNames[detail] : "?";
}

std::string to_string(const TraceEvent& e) {
  char buf[256];
  const double t_us = static_cast<double>(e.at) / 1000.0;
  int n = std::snprintf(buf, sizeof(buf),
                        "%14.3fus seq=%-8llu node=%-4u %-22s",
                        t_us, static_cast<unsigned long long>(e.seq), e.node,
                        std::string(kind_name(e.kind)).c_str());
  std::string out(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
  switch (e.kind) {
    case EventKind::kCpuOpStart:
    case EventKind::kCpuOpFinish:
    case EventKind::kCpuReject:
      out += " stage=";
      out += stage_name(e.detail);
      break;
    case EventKind::kPktDrop:
      out += " reason=";
      out += drop_reason_name(e.detail);
      break;
    case EventKind::kVnicMode:
      std::snprintf(buf, sizeof(buf), " vnic=%llu %u->%u",
                    static_cast<unsigned long long>(e.a), mode_from(e.detail),
                    mode_to(e.detail));
      out += buf;
      break;
    default:
      break;
  }
  if (e.packet_id != 0) {
    std::snprintf(buf, sizeof(buf), " pkt=%llu",
                  static_cast<unsigned long long>(e.packet_id));
    out += buf;
  }
  if (e.flow != 0) {
    std::snprintf(buf, sizeof(buf), " flow=%016llx",
                  static_cast<unsigned long long>(e.flow));
    out += buf;
  }
  if (e.a != 0 && e.kind != EventKind::kVnicMode) {
    std::snprintf(buf, sizeof(buf), " a=%llu",
                  static_cast<unsigned long long>(e.a));
    out += buf;
  }
  if (e.b != 0) {
    std::snprintf(buf, sizeof(buf), " b=%llu",
                  static_cast<unsigned long long>(e.b));
    out += buf;
  }
  return out;
}

}  // namespace nezha::telemetry
