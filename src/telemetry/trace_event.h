// Flight-recorder trace event schema.
//
// One fixed-size POD record per observable datapath or control-plane
// moment. Events carry the simulation timestamp, a global sequence number
// (assigned by the FlightRecorder at record time — the total order of a
// run), the emitting node, and two identity fields that survive every hop
// of Nezha's BE→FE→peer detour:
//
//  * packet_id — the sim-metadata Packet::id. It is preserved across
//    encap/decap and the extra FE hop, so one physical packet's events can
//    be chained across nodes. 0 means "no packet context".
//  * flow — the canonical-5-tuple hash (seed 0), identical for both
//    directions of a connection, so one connection's whole life can be
//    reconstructed from a merged dump.
//
// The struct is trivially copyable and written byte-for-byte into binary
// dumps, so the layout (and the explicit padding) is part of the dump
// format: bump kTraceFormatVersion when changing it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/time.h"

namespace nezha::telemetry {

enum class EventKind : std::uint8_t {
  kPktEnqueue = 0,    // network accepted a packet onto the sender's port
  kPktDeliver,        // network handed a packet to the destination node
  kPktDrop,           // network dropped the packet (detail = DropReason)
  kCpuOpStart,        // vSwitch charged a CPU cost (detail = Stage)
  kCpuOpFinish,       // deferred CPU op completed (detail = Stage)
  kCpuReject,         // CPU model refused the op: overload (detail = Stage)
  kBeFeRedirect,      // BE picked an FE for a TX packet (a = FE underlay IP)
  kTableMiss,         // slow-path rule chain ran (a = running miss count)
  kVmDeliver,         // packet handed to the VM side (a = vNIC id)
  kVnicMode,          // vNIC offload FSM step (a = vNIC, detail = from<<4|to)
  kCtrlOffloadBegin,  // controller started an offload workflow (a = vNIC)
  kCtrlOffloadDone,   // offload workflow completed (a = vNIC, b = #FEs)
  kCtrlFallbackBegin, // controller started a fallback workflow (a = vNIC)
  kCtrlFallbackDone,  // fallback workflow completed (a = vNIC)
  kCtrlScaleOut,      // FE pool grew (a = vNIC, b = FEs added)
  kCtrlScaleIn,       // FEs evicted from a vSwitch (a = FE count removed)
  kCtrlFeCrash,       // controller handled an FE crash (a = crashed node)
  kCtrlLinkFailover,  // §C.1 per-vNIC link failover (a = vNIC, b = FE node)
  kProbeSent,         // monitor probe sent (a = target node, b = probe id)
  kProbeReply,        // monitor got a reply (a = target node, b = probe id)
  kCrashDeclared,     // monitor declared a target dead (a = target node)
  kCrashSuppressed,   // §C.2 widespread-failure guard tripped (a = target)
  kCtrlDisplace,      // push-aside evicted an FE (node = host, a = requester
                      // vNIC, b = displaced vNIC); appended after v1: kind
                      // values are dump format
  kFenceSched,        // fenced section got its global seq (a = due, b = seq)
  kFenceExec,         // fenced section executed at a barrier (a = due,
                      // b = seq); a kFenceSched with no matching kFenceExec
                      // after the run is a stuck fence
  kSloViolation,      // SLO tracker breach (a = SloRule, b = value * 1000
                      // truncated, node = offending node)
  kCount,
};

/// Datapath stage tags for CPU-op events (mirrors the vSwitch stage
/// functions; kProbe covers the health-probe fast reply).
enum class Stage : std::uint8_t {
  kLocalTx = 0,
  kBeTx,
  kLocalRx,
  kBeRx,
  kBeNotify,
  kFeTx,
  kFeRx,
  kProbe,
  kCount,
};

/// Network drop reasons for kPktDrop (mirrors Network's drop counters).
enum class DropReason : std::uint8_t {
  kNone = 0,
  kNoRoute,
  kCrashed,
  kQueueFull,
  kPartitioned,
  kFabric,
  kCount,
};

inline constexpr std::uint32_t kTraceFormatVersion = 1;

struct TraceEvent {
  common::TimePoint at = 0;    // simulation time
  std::uint64_t seq = 0;       // global record order (FlightRecorder stamps)
  std::uint64_t packet_id = 0; // Packet::id; persists across the FE hop
  std::uint64_t flow = 0;      // canonical-5-tuple hash; 0 = no flow context
  std::uint64_t a = 0;         // kind-specific (see EventKind comments)
  std::uint64_t b = 0;         // kind-specific
  std::uint32_t node = 0;      // emitting sim::NodeId
  EventKind kind = EventKind::kPktEnqueue;
  std::uint8_t detail = 0;     // Stage / DropReason / packed mode transition
  std::uint16_t reserved = 0;  // 0, except merged sharded dumps: src shard
};
static_assert(sizeof(TraceEvent) == 56, "TraceEvent layout is dump format");

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(EventKind::kCount)>
    kEventKindNames = {
        "pkt.enqueue",        "pkt.deliver",       "pkt.drop",
        "cpu.op_start",       "cpu.op_finish",     "cpu.reject",
        "be.fe_redirect",     "table.miss",        "vm.deliver",
        "vnic.mode",          "ctrl.offload_begin", "ctrl.offload_done",
        "ctrl.fallback_begin", "ctrl.fallback_done", "ctrl.scale_out",
        "ctrl.scale_in",      "ctrl.fe_crash",     "ctrl.link_failover",
        "probe.sent",         "probe.reply",       "probe.crash_declared",
        "probe.crash_suppressed", "ctrl.displace",  "shard.fence_sched",
        "shard.fence_exec",   "slo.violation",
};

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(Stage::kCount)>
    kStageNames = {
        "local_tx", "be_tx", "local_rx", "be_rx",
        "be_notify", "fe_tx", "fe_rx",   "probe",
};

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(DropReason::kCount)>
    kDropReasonNames = {
        "none", "no_route", "crashed", "queue_full", "partitioned", "fabric",
};

std::string_view kind_name(EventKind kind);
std::string_view stage_name(std::uint8_t detail);
std::string_view drop_reason_name(std::uint8_t detail);

/// Packs a vNIC mode transition into TraceEvent::detail (4 bits each side).
inline std::uint8_t pack_mode_transition(std::uint8_t from, std::uint8_t to) {
  return static_cast<std::uint8_t>((from << 4) | (to & 0x0f));
}
inline std::uint8_t mode_from(std::uint8_t detail) { return detail >> 4; }
inline std::uint8_t mode_to(std::uint8_t detail) { return detail & 0x0f; }

/// One-line human rendering (used by nezha_trace and test diagnostics).
std::string to_string(const TraceEvent& e);

}  // namespace nezha::telemetry
