// Trace-dump query library backing the nezha_trace CLI (and tests).
//
// Loads binary flight-recorder dumps and answers the three questions the
// tentpole asks for: the timeline of one connection, the top-K slowest
// first-packet setups, and a vNIC state-machine audit for one vSwitch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/telemetry/trace_event.h"

namespace nezha::telemetry {

/// Parses a binary dump (FlightRecorder::dump format); validates magic,
/// version and record size.
common::Result<std::vector<TraceEvent>> load_trace(std::istream& is);
common::Result<std::vector<TraceEvent>> load_trace_file(
    const std::string& path);

/// Events touching one connection (flow hash), in seq order.
std::vector<TraceEvent> filter_flow(const std::vector<TraceEvent>& events,
                                    std::uint64_t flow);

/// Events touching one physical packet, in seq order.
std::vector<TraceEvent> filter_packet(const std::vector<TraceEvent>& events,
                                      std::uint64_t packet_id);

/// First-packet setup cost of one connection: the span from its first
/// slow-path rule-chain run (table.miss) to the first VM delivery at or
/// after it.
struct SetupLatency {
  std::uint64_t flow = 0;
  common::TimePoint miss_at = 0;
  common::TimePoint deliver_at = 0;
  common::Duration latency() const { return deliver_at - miss_at; }
};

/// Top-K slowest first-packet setups, latency descending (ties broken by
/// flow ascending so the answer is deterministic). Connections whose setup
/// never completed (no delivery after the miss) are excluded.
std::vector<SetupLatency> slowest_setups(const std::vector<TraceEvent>& events,
                                         std::size_t k);

/// One vNIC offload-FSM step observed on a vSwitch.
struct ModeTransition {
  common::TimePoint at = 0;
  std::uint64_t vnic = 0;
  std::uint8_t from = 0;
  std::uint8_t to = 0;
  bool legal = false;  // edge allowed AND continuous with previous state
};

/// Audits every vnic.mode event recorded by `node` against the legal cycle
/// kLocal(0) → kOffloadDualRunning(1) → kOffloaded(2) →
/// kFallbackDualRunning(3) → kLocal(0), per vNIC: an edge is legal when it
/// is one of those four steps and its `from` matches the vNIC's previous
/// `to` (the first observation only needs a legal edge).
std::vector<ModeTransition> audit_vswitch(
    const std::vector<TraceEvent>& events, std::uint32_t node);

/// Reconstruction of one connection's BE→FE→peer forwarding path.
struct PathCheck {
  bool have_be_tx = false;       // CPU charged at the BE for the TX packet
  bool have_redirect = false;    // BE chose an FE
  bool have_fe_hop = false;      // FE charged CPU for the forwarded packet
  bool have_peer_deliver = false;  // VM delivery at a third node
  std::uint32_t be_node = 0;
  std::uint32_t fe_node = 0;
  std::uint32_t peer_node = 0;
  std::vector<TraceEvent> timeline;  // the connection's events, seq order

  bool complete() const {
    return have_be_tx && have_redirect && have_fe_hop && have_peer_deliver;
  }
};

/// Verifies that `flow`'s trace contains the full Nezha detour: a BE-side
/// be_tx CPU op, the BE→FE redirect (unordered relative to the be_tx op —
/// both are recorded at the same instant on the BE), CPU work at a
/// *different* node after the redirect (the FE), and a VM delivery at a
/// third node after that (the peer).
PathCheck check_be_fe_peer_path(const std::vector<TraceEvent>& events,
                                std::uint64_t flow);

/// One-line rendering (to_string) of each event in order.
void print_timeline(std::ostream& os, const std::vector<TraceEvent>& events);

}  // namespace nezha::telemetry
