#include "src/telemetry/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace nezha::telemetry {

namespace {

/// Deterministic double rendering: %.10g round-trips every value the
/// registry produces and never varies across runs.
void append_double(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.10g", v);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

MetricsRegistry::Id MetricsRegistry::counter(std::string name) {
  const Id existing = find_counter(name);
  if (existing != kInvalidId) return existing;
  counters_.push_back(CounterSlot{std::move(name), 0});
  return static_cast<Id>(counters_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string name,
                                           std::function<double()> fn) {
  const Id existing = find_gauge(name);
  if (existing != kInvalidId) {
    gauges_[existing].fn = std::move(fn);
    return existing;
  }
  gauges_.push_back(GaugeSlot{std::move(name), std::move(fn)});
  return static_cast<Id>(gauges_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string name, double lo,
                                               double hi,
                                               std::size_t buckets) {
  const Id existing = find_histogram(name);
  if (existing != kInvalidId) return existing;
  hists_.push_back(
      HistSlot{std::move(name), common::Histogram(lo, hi, buckets)});
  return static_cast<Id>(hists_.size() - 1);
}

MetricsRegistry::Id MetricsRegistry::find_counter(
    std::string_view name) const {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i].name == name) return static_cast<Id>(i);
  }
  return kInvalidId;
}

MetricsRegistry::Id MetricsRegistry::find_gauge(std::string_view name) const {
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i].name == name) return static_cast<Id>(i);
  }
  return kInvalidId;
}

MetricsRegistry::Id MetricsRegistry::find_histogram(
    std::string_view name) const {
  for (std::size_t i = 0; i < hists_.size(); ++i) {
    if (hists_[i].name == name) return static_cast<Id>(i);
  }
  return kInvalidId;
}

double MetricsRegistry::hist_mean(Id h) const {
  const HistSlot& s = hists_[h];
  const std::uint64_t n = s.hist.total();
  return n == 0 ? 0.0 : s.sum / static_cast<double>(n);
}

double MetricsRegistry::hist_quantile(Id h, double p) const {
  const HistSlot& s = hists_[h];
  if (s.hist.total() == 0) return 0.0;
  if (p <= 0.0) return s.min;
  if (p >= 100.0) return s.max;
  double q = s.hist.quantile(p);
  if (q < s.min) q = s.min;
  if (q > s.max) q = s.max;
  return q;
}

void MetricsRegistry::start_sampler(sim::EventLoop& loop,
                                    common::Duration period,
                                    std::size_t max_samples) {
  stop_sampler();
  series_counters_ = counters_.size();
  series_gauges_ = gauges_.size();
  row_width_ = 1 + series_counters_ + series_gauges_;
  max_rows_ = max_samples;
  rows_.assign(max_rows_ * row_width_, 0.0);
  last_row_.assign(row_width_, 0.0);
  have_sample_ = false;
  rows_used_ = 0;
  dropped_ticks_ = 0;
  period_ = period;
  sampler_loop_ = &loop;
  sampler_id_ = loop.schedule_periodic(
      period, [this] { tick(sampler_loop_->now()); });
}

void MetricsRegistry::stop_sampler() {
  if (sampler_loop_ != nullptr) {
    sampler_loop_->cancel(sampler_id_);
    sampler_loop_ = nullptr;
    sampler_id_ = 0;
  }
}

void MetricsRegistry::tick(common::TimePoint now) {
  // Every tick fills the scratch row exactly once — gauge functions may
  // advance an internal checkpoint when read, so neither the committed row
  // nor any observer may re-invoke them. Rows beyond capacity are dropped
  // from the series but still refresh the scratch row and still notify the
  // observer, so last_sample_*() and the SLO tracker keep running.
  double* row = last_row_.data();
  row[0] = static_cast<double>(now);
  for (std::size_t i = 0; i < series_counters_; ++i) {
    row[1 + i] = static_cast<double>(counters_[i].value);
  }
  for (std::size_t j = 0; j < series_gauges_; ++j) {
    row[1 + series_counters_ + j] = gauges_[j].fn();
  }
  have_sample_ = true;
  if (rows_used_ == max_rows_) {
    ++dropped_ticks_;
  } else {
    double* dst = rows_.data() + rows_used_ * row_width_;
    for (std::size_t c = 0; c < row_width_; ++c) dst[c] = row[c];
    ++rows_used_;
  }
  if (tick_observer_) tick_observer_(now);
}

double MetricsRegistry::last_sample_counter(Id c) const {
  if (!have_sample_ || c >= series_counters_) return 0.0;
  return last_row_[1 + c];
}

double MetricsRegistry::last_sample_gauge(Id g) const {
  if (!have_sample_ || g >= series_gauges_) return 0.0;
  return last_row_[1 + series_counters_ + g];
}

void MetricsRegistry::add_json_section(
    std::string name, std::function<void(std::string&)> writer) {
  sections_.push_back(JsonSection{std::move(name), std::move(writer)});
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::string out;
  out.reserve(4096 + rows_used_ * row_width_ * 12);
  out += "{\n  \"schema\": \"nezha-telemetry-v1\",\n";
  out += "  \"sample_period_ns\": ";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64, period_);
  out += buf;
  out += ",\n  \"samples_taken\": ";
  std::snprintf(buf, sizeof(buf), "%zu", rows_used_);
  out += buf;
  out += ",\n  \"dropped_ticks\": ";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, dropped_ticks_);
  out += buf;
  out += ",\n  \"series\": [";
  out += "\"t_ns\"";
  for (std::size_t i = 0; i < series_counters_; ++i) {
    out += ", ";
    append_json_string(out, "c:" + counters_[i].name);
  }
  for (std::size_t j = 0; j < series_gauges_; ++j) {
    out += ", ";
    append_json_string(out, "g:" + gauges_[j].name);
  }
  out += "],\n  \"samples\": [";
  for (std::size_t r = 0; r < rows_used_; ++r) {
    out += r == 0 ? "\n    [" : ",\n    [";
    const double* row = rows_.data() + r * row_width_;
    for (std::size_t c = 0; c < row_width_; ++c) {
      if (c != 0) out += ", ";
      if (c == 0 || c <= series_counters_) {
        // Timestamps and counters are integral; render without exponent.
        std::snprintf(buf, sizeof(buf), "%.0f", row[c]);
        out += buf;
      } else {
        append_double(out, row[c]);
      }
    }
    out += ']';
  }
  out += rows_used_ ? "\n  ],\n" : "],\n";
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_json_string(out, counters_[i].name);
    out += ": ";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counters_[i].value);
    out += buf;
  }
  out += counters_.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t h = 0; h < hists_.size(); ++h) {
    const HistSlot& s = hists_[h];
    out += h == 0 ? "\n    " : ",\n    ";
    append_json_string(out, s.name);
    out += ": {\"lo\": ";
    append_double(out, s.hist.lo());
    out += ", \"hi\": ";
    append_double(out, s.hist.hi());
    out += ", \"count\": ";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, s.hist.total());
    out += buf;
    out += ", \"underflow\": ";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, s.hist.underflow());
    out += buf;
    out += ", \"overflow\": ";
    std::snprintf(buf, sizeof(buf), "%" PRIu64, s.hist.overflow());
    out += buf;
    out += ",\n      \"buckets\": [";
    for (std::size_t i = 0; i < s.hist.bucket_count(); ++i) {
      if (i != 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64, s.hist.bucket(i));
      out += buf;
    }
    out += "],\n      \"mean\": ";
    append_double(out, hist_mean(static_cast<Id>(h)));
    out += ", \"min\": ";
    append_double(out, s.hist.total() ? s.min : 0.0);
    out += ", \"max\": ";
    append_double(out, s.hist.total() ? s.max : 0.0);
    out += ", \"p50\": ";
    append_double(out, hist_quantile(static_cast<Id>(h), 50.0));
    out += ", \"p90\": ";
    append_double(out, hist_quantile(static_cast<Id>(h), 90.0));
    out += ", \"p99\": ";
    append_double(out, hist_quantile(static_cast<Id>(h), 99.0));
    out += ", \"p999\": ";
    append_double(out, hist_quantile(static_cast<Id>(h), 99.9));
    out += "}";
  }
  out += hists_.empty() ? "}" : "\n  }";
  for (const JsonSection& s : sections_) {
    out += ",\n  ";
    append_json_string(out, s.name);
    out += ": ";
    s.writer(out);
  }
  out += "\n}\n";
  os << out;
}

}  // namespace nezha::telemetry
