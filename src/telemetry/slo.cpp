#include "src/telemetry/slo.h"

#include <cinttypes>
#include <cstdio>

#include "src/telemetry/hub.h"

namespace nezha::telemetry {

namespace {

// Mirrors the registry's deterministic double rendering.
void append_double(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof(buf), "%.10g", v);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Parses the vswitch index out of "vs<digits>.<suffix>"; returns false
/// for any other gauge name shape.
bool parse_vs_gauge(std::string_view name, std::string_view suffix,
                    std::uint32_t* node) {
  if (name.size() < 2 + 1 + suffix.size()) return false;
  if (name.substr(0, 2) != "vs") return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  const std::string_view digits =
      name.substr(2, name.size() - 2 - suffix.size());
  if (digits.empty()) return false;
  std::uint32_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint32_t>(c - '0');
  }
  *node = v;
  return true;
}

}  // namespace

std::string_view slo_rule_name(std::uint64_t rule) {
  return rule < kSloRuleNames.size() ? kSloRuleNames[rule] : "?";
}

SloTracker::SloTracker(Hub& hub, const SloConfig& cfg, const SloWiring& wiring)
    : hub_(hub), cfg_(cfg), wiring_(wiring) {
  MetricsRegistry& m = hub_.metrics();
  total_counter_ = m.counter("slo.violations");
  const std::uint32_t burn_w = cfg_.burn_window == 0 ? 1 : cfg_.burn_window;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    rules_[r].counter =
        m.counter("slo.violations." + std::string(kSloRuleNames[r]));
    rules_[r].burn_ring.assign(burn_w, 0);
  }

  auto wire_hist = [&m](HistWindow& w, std::string_view name) {
    w.id = m.find_histogram(name);
    if (w.id == MetricsRegistry::kInvalidId) return false;
    w.prev.assign(m.hist_data(w.id).bucket_count(), 0);
    return true;
  };
  rules_[static_cast<std::size_t>(SloRule::kP99LocalRx)].active =
      wire_hist(local_rx_, "latency.local_rx_us");
  rules_[static_cast<std::size_t>(SloRule::kP99BeRx)].active =
      wire_hist(be_rx_, "latency.be_rx_us");

  for (std::size_t g = 0; g < m.gauge_count(); ++g) {
    const auto id = static_cast<MetricsRegistry::Id>(g);
    std::uint32_t node = 0;
    if (parse_vs_gauge(m.gauge_name(id), ".cpu_util", &node)) {
      cpu_gauges_.push_back(NodeGauge{id, node});
    } else if (parse_vs_gauge(m.gauge_name(id), ".session_mem", &node)) {
      mem_gauges_.push_back(NodeGauge{id, node});
    }
  }
  rules_[static_cast<std::size_t>(SloRule::kCpuHeadroom)].active =
      !cpu_gauges_.empty();
  rules_[static_cast<std::size_t>(SloRule::kSessionMem)].active =
      !mem_gauges_.empty();

  probes_sent_ = m.find_gauge("mon.probes_sent");
  probe_replies_ = m.find_gauge("mon.probe_replies");
  const bool probes = probes_sent_ != MetricsRegistry::kInvalidId &&
                      probe_replies_ != MetricsRegistry::kInvalidId;
  rules_[static_cast<std::size_t>(SloRule::kProbeLoss)].active = probes;
  if (probes) {
    const std::uint32_t lag =
        wiring_.probe_lag_ticks == 0 ? 1 : wiring_.probe_lag_ticks;
    probe_lag_ring_.assign(lag, 0.0);
  }

  rules_[static_cast<std::size_t>(SloRule::kP99LocalRx)].threshold =
      cfg_.p99_local_rx_us;
  rules_[static_cast<std::size_t>(SloRule::kP99BeRx)].threshold =
      cfg_.p99_be_rx_us;
  rules_[static_cast<std::size_t>(SloRule::kProbeLoss)].threshold =
      cfg_.max_probe_loss;
  rules_[static_cast<std::size_t>(SloRule::kCpuHeadroom)].threshold =
      cfg_.max_cpu_util;
  rules_[static_cast<std::size_t>(SloRule::kSessionMem)].threshold =
      cfg_.max_session_mem;

  m.set_tick_observer([this](common::TimePoint now) { on_tick(now); });
  m.add_json_section("slo", [this](std::string& out) { write_json(out); });
}

bool SloTracker::windowed_p99(HistWindow& w, double* out) {
  const MetricsRegistry& m = hub_.metrics();
  const common::Histogram& h = m.hist_data(w.id);
  const std::uint64_t total = h.total();
  const std::uint64_t n = total - w.prev_total;
  const std::uint64_t under = h.underflow();
  const std::uint64_t over = h.overflow();
  if (n == 0) return false;

  const double target = 0.99 * static_cast<double>(n);
  double value = h.hi();
  double cum = static_cast<double>(under - w.prev_underflow);
  bool found = false;
  if (cum >= target) {
    value = h.lo();
    found = true;
  }
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    const std::uint64_t d = h.bucket(i) - w.prev[i];
    if (!found) {
      cum += static_cast<double>(d);
      if (cum >= target) {
        const double frac =
            d == 0 ? 1.0
                   : (target - (cum - static_cast<double>(d))) /
                         static_cast<double>(d);
        value = h.bucket_lo(i) + (h.bucket_hi(i) - h.bucket_lo(i)) * frac;
        found = true;
      }
    }
    w.prev[i] = h.bucket(i);
  }
  w.prev_underflow = under;
  w.prev_overflow = over;
  w.prev_total = total;
  *out = value;
  return true;
}

void SloTracker::evaluate(SloRule r, double value, std::uint32_t node,
                          common::TimePoint now) {
  RuleState& s = rules_[static_cast<std::size_t>(r)];
  if (!s.have) {
    s.have = true;
    s.min = s.max = value;
    s.ewma = value;
  } else {
    if (value < s.min) s.min = value;
    if (value > s.max) s.max = value;
    s.ewma += cfg_.ewma_alpha * (value - s.ewma);
  }
  s.last = value;
  ++s.ticks;

  const bool breach = value > s.threshold;
  const std::uint8_t flag = breach ? 1 : 0;
  s.burn_count += flag;
  s.burn_count -= s.burn_ring[s.burn_pos];
  s.burn_ring[s.burn_pos] = flag;
  s.burn_pos = (s.burn_pos + 1) % static_cast<std::uint32_t>(
                                      s.burn_ring.size());

  if (!breach) return;
  ++s.violations;
  if (s.first_violation_at < 0) s.first_violation_at = now;
  s.last_violation_at = now;
  if (s.violations == 1 || value > s.worst) {
    s.worst = value;
    s.worst_node = node;
  }
  MetricsRegistry& m = hub_.metrics();
  m.add(total_counter_);
  m.add(s.counter);
  TraceEvent e;
  e.at = now;
  e.node = node;
  e.kind = EventKind::kSloViolation;
  e.a = static_cast<std::uint64_t>(r);
  e.b = value <= 0.0 ? 0 : static_cast<std::uint64_t>(value * 1000.0);
  hub_.record(e);
}

void SloTracker::on_tick(common::TimePoint now) {
  const MetricsRegistry& m = hub_.metrics();
  double v = 0.0;
  if (rule_active(SloRule::kP99LocalRx) && windowed_p99(local_rx_, &v)) {
    evaluate(SloRule::kP99LocalRx, v, wiring_.fleet_node, now);
  }
  if (rule_active(SloRule::kP99BeRx) && windowed_p99(be_rx_, &v)) {
    evaluate(SloRule::kP99BeRx, v, wiring_.fleet_node, now);
  }
  if (rule_active(SloRule::kProbeLoss)) {
    const double sent_now = m.last_sample_gauge(probes_sent_);
    const double replies_now = m.last_sample_gauge(probe_replies_);
    const double lagged = probe_lag_ring_[probe_lag_pos_];
    probe_lag_ring_[probe_lag_pos_] = sent_now;
    probe_lag_pos_ = (probe_lag_pos_ + 1) %
                     static_cast<std::uint32_t>(probe_lag_ring_.size());
    ++probe_ticks_;
    if (probe_ticks_ > probe_lag_ring_.size() && lagged > 0.0) {
      double loss = (lagged - replies_now) / lagged;
      if (loss < 0.0) loss = 0.0;
      if (loss > 1.0) loss = 1.0;
      evaluate(SloRule::kProbeLoss, loss, wiring_.monitor_node, now);
    }
  }
  if (rule_active(SloRule::kCpuHeadroom)) {
    double worst = 0.0;
    std::uint32_t node = cpu_gauges_[0].node;
    for (const NodeGauge& g : cpu_gauges_) {
      const double x = m.last_sample_gauge(g.id);
      if (x > worst) {
        worst = x;
        node = g.node;
      }
    }
    evaluate(SloRule::kCpuHeadroom, worst, node, now);
  }
  if (rule_active(SloRule::kSessionMem)) {
    double worst = 0.0;
    std::uint32_t node = mem_gauges_[0].node;
    for (const NodeGauge& g : mem_gauges_) {
      const double x = m.last_sample_gauge(g.id);
      if (x > worst) {
        worst = x;
        node = g.node;
      }
    }
    evaluate(SloRule::kSessionMem, worst, node, now);
  }
}

std::uint64_t SloTracker::total_violations() const {
  std::uint64_t n = 0;
  for (const RuleState& s : rules_) n += s.violations;
  return n;
}

double SloTracker::burn_rate(SloRule r) const {
  const RuleState& s = rules_[static_cast<std::size_t>(r)];
  if (s.ticks == 0) return 0.0;
  const std::uint64_t w = s.ticks < s.burn_ring.size()
                              ? s.ticks
                              : static_cast<std::uint64_t>(
                                    s.burn_ring.size());
  return static_cast<double>(s.burn_count) / static_cast<double>(w);
}

void SloTracker::write_json(std::string& out) const {
  out += "{\n    \"config\": {\"ewma_alpha\": ";
  append_double(out, cfg_.ewma_alpha);
  out += ", \"burn_window\": ";
  append_u64(out, cfg_.burn_window);
  out += ", \"probe_lag_ticks\": ";
  append_u64(out, wiring_.probe_lag_ticks);
  out += "},\n    \"rules\": {";
  bool first = true;
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const RuleState& s = rules_[r];
    if (!s.active) continue;
    out += first ? "\n      \"" : ",\n      \"";
    first = false;
    out += kSloRuleNames[r];
    out += "\": {\"threshold\": ";
    append_double(out, s.threshold);
    out += ", \"ticks\": ";
    append_u64(out, s.ticks);
    out += ", \"violations\": ";
    append_u64(out, s.violations);
    out += ",\n        \"last\": ";
    append_double(out, s.last);
    out += ", \"min\": ";
    append_double(out, s.min);
    out += ", \"max\": ";
    append_double(out, s.max);
    out += ", \"ewma\": ";
    append_double(out, s.ewma);
    out += ", \"burn_rate\": ";
    append_double(out, burn_rate(static_cast<SloRule>(r)));
    out += ",\n        \"worst\": ";
    append_double(out, s.worst);
    out += ", \"worst_node\": ";
    append_u64(out, s.worst_node);
    out += ", \"first_violation_t_ns\": ";
    append_i64(out, s.first_violation_at);
    out += ", \"last_violation_t_ns\": ";
    append_i64(out, s.last_violation_at);
    out += "}";
  }
  out += first ? "},\n" : "\n    },\n";
  out += "    \"total_violations\": ";
  append_u64(out, total_violations());
  out += "\n  }";
}

}  // namespace nezha::telemetry
