#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <ostream>

namespace nezha::telemetry {

FlightRecorder::FlightRecorder(std::size_t num_nodes,
                               std::size_t events_per_node)
    : num_nodes_(num_nodes),
      events_per_node_(events_per_node == 0 ? 1 : events_per_node) {
  rings_.resize(num_nodes_ + 1);
  for (Ring& r : rings_) {
    r.buf.resize(events_per_node_);
  }
}

std::size_t FlightRecorder::ring_count(std::size_t node) const {
  return node < rings_.size() ? rings_[node].count : 0;
}

std::uint64_t FlightRecorder::ring_overwritten(std::size_t node) const {
  return node < rings_.size() ? rings_[node].overwritten : 0;
}

std::vector<TraceEvent> FlightRecorder::merged() const {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const Ring& r : rings_) total += r.count;
  out.reserve(total);
  for (const Ring& r : rings_) {
    // Ring order: oldest retained event first.
    const std::size_t start =
        r.count < r.buf.size() ? 0 : r.head;  // head == oldest when full
    for (std::size_t i = 0; i < r.count; ++i) {
      out.push_back(r.buf[(start + i) % r.buf.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::dump(std::ostream& os) const {
  const std::vector<TraceEvent> events = merged();
  const std::uint64_t magic = kTraceMagic;
  const std::uint32_t version = kTraceFormatVersion;
  const std::uint32_t record_size = sizeof(TraceEvent);
  const std::uint64_t count = events.size();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  os.write(reinterpret_cast<const char*>(&record_size), sizeof(record_size));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!events.empty()) {
    os.write(reinterpret_cast<const char*>(events.data()),
             static_cast<std::streamsize>(events.size() * sizeof(TraceEvent)));
  }
}

void FlightRecorder::clear() {
  for (Ring& r : rings_) {
    r.head = 0;
    r.count = 0;
    r.overwritten = 0;
  }
  next_seq_ = 1;
}

std::vector<TraceEvent> merge_recorders(
    const std::vector<const FlightRecorder*>& recorders) {
  struct Tagged {
    TraceEvent e;
    std::uint32_t shard;
  };
  std::vector<Tagged> all;
  for (std::uint32_t s = 0; s < recorders.size(); ++s) {
    if (recorders[s] == nullptr) continue;
    for (const TraceEvent& e : recorders[s]->merged()) {
      all.push_back(Tagged{e, s});
    }
  }
  // (at, shard, seq): `at` is nondecreasing within a shard's record order,
  // so the sort interleaves shards chronologically and keeps each shard's
  // own order intact — a deterministic total order for any thread count.
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.e.at != b.e.at) return a.e.at < b.e.at;
                     if (a.shard != b.shard) return a.shard < b.shard;
                     return a.e.seq < b.e.seq;
                   });
  std::vector<TraceEvent> out;
  out.reserve(all.size());
  std::uint64_t seq = 1;
  for (Tagged& t : all) {
    t.e.seq = seq++;
    t.e.reserved = static_cast<std::uint16_t>(t.shard);
    out.push_back(t.e);
  }
  return out;
}

void dump_merged(std::ostream& os,
                 const std::vector<const FlightRecorder*>& recorders) {
  const std::vector<TraceEvent> events = merge_recorders(recorders);
  const std::uint64_t magic = kTraceMagic;
  const std::uint32_t version = kTraceFormatVersion;
  const std::uint32_t record_size = sizeof(TraceEvent);
  const std::uint64_t count = events.size();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  os.write(reinterpret_cast<const char*>(&record_size), sizeof(record_size));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!events.empty()) {
    os.write(reinterpret_cast<const char*>(events.data()),
             static_cast<std::streamsize>(events.size() * sizeof(TraceEvent)));
  }
}

}  // namespace nezha::telemetry
