#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <ostream>

namespace nezha::telemetry {

FlightRecorder::FlightRecorder(std::size_t num_nodes,
                               std::size_t events_per_node)
    : num_nodes_(num_nodes),
      events_per_node_(events_per_node == 0 ? 1 : events_per_node) {
  rings_.resize(num_nodes_ + 1);
  for (Ring& r : rings_) {
    r.buf.resize(events_per_node_);
  }
}

std::size_t FlightRecorder::ring_count(std::size_t node) const {
  return node < rings_.size() ? rings_[node].count : 0;
}

std::uint64_t FlightRecorder::ring_overwritten(std::size_t node) const {
  return node < rings_.size() ? rings_[node].overwritten : 0;
}

std::vector<TraceEvent> FlightRecorder::merged() const {
  std::vector<TraceEvent> out;
  std::size_t total = 0;
  for (const Ring& r : rings_) total += r.count;
  out.reserve(total);
  for (const Ring& r : rings_) {
    // Ring order: oldest retained event first.
    const std::size_t start =
        r.count < r.buf.size() ? 0 : r.head;  // head == oldest when full
    for (std::size_t i = 0; i < r.count; ++i) {
      out.push_back(r.buf[(start + i) % r.buf.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::dump(std::ostream& os) const {
  const std::vector<TraceEvent> events = merged();
  const std::uint64_t magic = kTraceMagic;
  const std::uint32_t version = kTraceFormatVersion;
  const std::uint32_t record_size = sizeof(TraceEvent);
  const std::uint64_t count = events.size();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  os.write(reinterpret_cast<const char*>(&record_size), sizeof(record_size));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!events.empty()) {
    os.write(reinterpret_cast<const char*>(events.data()),
             static_cast<std::streamsize>(events.size() * sizeof(TraceEvent)));
  }
}

void FlightRecorder::clear() {
  for (Ring& r : rings_) {
    r.head = 0;
    r.count = 0;
    r.overwritten = 0;
  }
  next_seq_ = 1;
}

}  // namespace nezha::telemetry
