#include "src/telemetry/hub.h"

#include "src/net/packet.h"

namespace nezha::telemetry {

Hub::Hub(std::size_t num_nodes, const TelemetryConfig& cfg)
    : cfg_(cfg),
      recorder_(num_nodes, cfg.events_per_node),
      trace_on_(cfg.trace),
      next_packet_id_(std::uint64_t{1} << 32) {}

std::uint64_t Hub::stamp(net::Packet& pkt) {
  if (pkt.id == 0) pkt.id = next_packet_id_++;
  return pkt.id;
}

}  // namespace nezha::telemetry
