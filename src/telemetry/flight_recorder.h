// Flight recorder: preallocated per-node ring buffers of TraceEvents.
//
// Design constraints (the tentpole's hard requirements):
//  * record() on the datapath is allocation-free — every ring is sized at
//    construction and wraparound overwrites the oldest events in place.
//  * The dump is deterministic — events carry a global sequence number
//    assigned at record time, and merged()/dump() order strictly by it, so
//    two runs of the same seed produce byte-identical dumps.
//
// Per-node rings (rather than one global ring) keep a chatty node from
// evicting a quiet node's history — the monitor's dozen probe events
// survive millions of datapath events elsewhere. Events from node ids past
// the constructed range land in a shared spillover ring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/telemetry/trace_event.h"

namespace nezha::telemetry {

class FlightRecorder {
 public:
  /// `num_nodes` dedicated rings (+1 spillover) of `events_per_node` each.
  FlightRecorder(std::size_t num_nodes, std::size_t events_per_node);

  /// Stamps the global sequence number and appends to the node's ring,
  /// overwriting the oldest event when full. Allocation-free.
  void record(TraceEvent e) {
    Ring& r = rings_[e.node < num_nodes_ ? e.node : num_nodes_];
    e.seq = next_seq_++;
    r.buf[r.head] = e;
    r.head = r.head + 1 == r.buf.size() ? 0 : r.head + 1;
    if (r.count < r.buf.size()) {
      ++r.count;
    } else {
      ++r.overwritten;
    }
  }

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t ring_capacity() const { return events_per_node_; }
  /// Events currently retained in node's ring (spillover = num_nodes()).
  std::size_t ring_count(std::size_t node) const;
  /// Events lost to wraparound in node's ring.
  std::uint64_t ring_overwritten(std::size_t node) const;
  /// Total record() calls (retained + overwritten).
  std::uint64_t recorded() const { return next_seq_ - 1; }

  /// All retained events merged across rings, ascending by seq (the global
  /// record order; ties are impossible — seq is unique). Dump-time only.
  std::vector<TraceEvent> merged() const;

  /// Binary dump: header (magic, version, record size, count) followed by
  /// merged() records byte-for-byte. Byte-identical across same-seed runs.
  void dump(std::ostream& os) const;

  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;
    std::size_t head = 0;   // next write position
    std::size_t count = 0;  // retained events (<= buf.size())
    std::uint64_t overwritten = 0;
  };

  std::size_t num_nodes_;
  std::size_t events_per_node_;
  std::vector<Ring> rings_;  // [0, num_nodes_) per node; [num_nodes_] spill
  std::uint64_t next_seq_ = 1;
};

/// Dump header magic: "NZTRACE\0" little-endian.
inline constexpr std::uint64_t kTraceMagic = 0x0045434152545a4eULL;

/// Deterministic post-run merge of several shards' recorders (DESIGN.md
/// §13): events are ordered by (at, shard, per-shard seq) — each shard's
/// `at` is nondecreasing in its own record order, so this is a total order
/// that two same-seed runs reproduce exactly regardless of thread count —
/// then renumbered with a fresh global seq. The originating shard index is
/// carried in TraceEvent::reserved. With one recorder this reproduces its
/// own record order.
std::vector<TraceEvent> merge_recorders(
    const std::vector<const FlightRecorder*>& recorders);

/// Binary dump of merge_recorders() in the standard dump format.
void dump_merged(std::ostream& os,
                 const std::vector<const FlightRecorder*>& recorders);

}  // namespace nezha::telemetry
