// Metrics registry: named interned counters, pull-gauges and fixed-bucket
// histograms, plus a periodic sampler that records deterministic time-series
// snapshots into preallocated storage and emits them as JSON.
//
// Hot-path contract: add()/observe() are array operations on interned ids —
// no string work, no allocation. The sampler tick only *reads* simulation
// state (gauges are pull functions) and writes into a row buffer sized at
// start_sampler(), so telemetry-on steady state stays allocation-free and
// the simulation outcome is bit-identical to a telemetry-off run.
//
// Determinism: series are ordered by registration, sampler ticks by virtual
// time, and the JSON writer formats numbers with fixed printf conversions —
// two same-seed runs produce byte-identical output.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/sim/event_loop.h"

namespace nezha::telemetry {

class MetricsRegistry {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = 0xffffffffu;

  // ---- registration (cold; idempotent by name) ----
  Id counter(std::string name);
  /// Pull-gauge: `fn` is invoked at each sampler tick (and by
  /// gauge_value()); it must read simulation state without mutating it.
  Id gauge(std::string name, std::function<double()> fn);
  Id histogram(std::string name, double lo, double hi, std::size_t buckets);

  Id find_counter(std::string_view name) const;
  Id find_gauge(std::string_view name) const;
  Id find_histogram(std::string_view name) const;

  // ---- hot path ----
  void add(Id c, std::uint64_t by = 1) { counters_[c].value += by; }
  void observe(Id h, double x) {
    HistSlot& s = hists_[h];
    if (s.hist.total() == 0) {
      s.min = s.max = x;
    } else {
      if (x < s.min) s.min = x;
      if (x > s.max) s.max = x;
    }
    s.sum += x;
    s.hist.add(x);
  }

  // ---- reads ----
  std::uint64_t counter_value(Id c) const { return counters_[c].value; }
  double gauge_value(Id g) const { return gauges_[g].fn(); }
  std::uint64_t hist_count(Id h) const { return hists_[h].hist.total(); }
  double hist_mean(Id h) const;
  /// Interpolated quantile (p in [0,100]) from the fixed buckets.
  double hist_quantile(Id h, double p) const;
  /// Raw bucket access for consumers (SLO tracker) that window histogram
  /// deltas between sampler ticks without re-deriving quantiles downstream.
  const common::Histogram& hist_data(Id h) const { return hists_[h].hist; }
  double hist_tracked_min(Id h) const { return hists_[h].min; }
  double hist_tracked_max(Id h) const { return hists_[h].max; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return hists_.size(); }
  std::string_view counter_name(Id c) const { return counters_[c].name; }
  std::string_view gauge_name(Id g) const { return gauges_[g].name; }
  std::string_view histogram_name(Id h) const { return hists_[h].name; }

  // ---- sampler ----
  /// Starts the periodic snapshot series on `loop`. The series set is
  /// frozen at this call (counters/gauges registered later are still
  /// readable and appear in the JSON footer, but not in the time series);
  /// row storage for `max_samples` ticks is preallocated here so the tick
  /// itself never allocates. Ticks beyond max_samples are counted as
  /// dropped instead of growing memory.
  void start_sampler(sim::EventLoop& loop, common::Duration period,
                     std::size_t max_samples);
  void stop_sampler();
  bool sampling() const { return sampler_loop_ != nullptr; }
  common::Duration sample_period() const { return period_; }
  std::size_t samples_taken() const { return rows_used_; }
  std::uint64_t dropped_ticks() const { return dropped_ticks_; }

  /// Most recent sampled value of a series (0 when no tick yet). Benches
  /// read these instead of keeping private accumulators. Values stay fresh
  /// even after the row store fills: every tick refreshes a scratch row and
  /// gauges are invoked exactly once per tick (some gauges — e.g. the CPU
  /// utilization sampler — advance an internal checkpoint when read).
  double last_sample_counter(Id c) const;
  double last_sample_gauge(Id g) const;

  /// Called at the end of every sampler tick (including dropped ticks),
  /// after the scratch row is filled — the SLO tracker's subscription
  /// point. Single observer; set before start_sampler().
  void set_tick_observer(std::function<void(common::TimePoint)> fn) {
    tick_observer_ = std::move(fn);
  }

  /// Appends an extra top-level JSON section emitted by write_json just
  /// before the closing brace. `writer` must append one JSON value and be
  /// deterministic. Sections appear in registration order.
  void add_json_section(std::string name,
                        std::function<void(std::string&)> writer);

  /// Deterministic JSON dump of the time series + final counter values +
  /// histogram buckets/percentiles (schema documented in README.md).
  void write_json(std::ostream& os) const;

 private:
  struct CounterSlot {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSlot {
    std::string name;
    std::function<double()> fn;
  };
  struct HistSlot {
    std::string name;
    common::Histogram hist;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  struct JsonSection {
    std::string name;
    std::function<void(std::string&)> writer;
  };

  void tick(common::TimePoint now);

  std::vector<CounterSlot> counters_;
  std::vector<GaugeSlot> gauges_;
  std::vector<HistSlot> hists_;
  std::vector<JsonSection> sections_;
  std::function<void(common::TimePoint)> tick_observer_;

  // Sampled row layout: [t_ns, counters[0..series_counters_),
  // gauges[0..series_gauges_)], all as double.
  std::vector<double> rows_;
  std::vector<double> last_row_;  // scratch row; refreshed every tick
  bool have_sample_ = false;
  std::size_t row_width_ = 0;
  std::size_t series_counters_ = 0;
  std::size_t series_gauges_ = 0;
  std::size_t rows_used_ = 0;
  std::size_t max_rows_ = 0;
  std::uint64_t dropped_ticks_ = 0;
  common::Duration period_ = 0;
  sim::EventLoop* sampler_loop_ = nullptr;
  sim::EventId sampler_id_ = 0;
};

}  // namespace nezha::telemetry
