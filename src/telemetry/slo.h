// In-sim SLO tracker: windowed rollups + burn-rate accounting over the
// metrics sampler.
//
// The tracker subscribes to MetricsRegistry sampler ticks (it never runs
// its own timer) and evaluates a fixed rule set against declared
// thresholds:
//
//   * p99 hop-class latency — windowed p99 of `latency.local_rx_us` and
//     `latency.be_rx_us`, computed from per-tick histogram bucket deltas
//     (the window is exactly one sample period).
//   * probe loss — the health monitor's cumulative reply count compared
//     against the probe count from `probe_lag_ticks` ticks ago, so replies
//     still in flight are never counted as lost.
//   * cpu / session-memory headroom — fleet max over the per-vswitch
//     `vs*.cpu_util` / `vs*.session_mem` gauges on this hub's shard.
//
// Every evaluated tick updates per-rule min/max/EWMA and a burn ring (the
// fraction of the last `burn_window` evaluated ticks in breach). A breach
// increments the interned `slo.violations` / `slo.violations.<rule>`
// counters (registered before the sampler starts, so they appear in the
// time series), records a kSloViolation trace event naming the offending
// node, and updates first/last violation sim-times.
//
// Determinism: every input is simulation state sampled at virtual-time
// ticks — no wall clock anywhere — so the `slo` JSON section and the
// violation counters are bit-identical across runs and worker-thread
// counts. Steady-state ticks are allocation-free: all rings and bucket
// shadows are sized at construction.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/metrics.h"

namespace nezha::telemetry {

class Hub;

/// Declared SLO thresholds. Defaults are sized for the paper's hop-class
/// latency budget (local_rx bounded by the 2000 µs histogram range) and a
/// conservative fleet posture; scenarios override per-test.
struct SloConfig {
  bool enabled = true;          // tracker wired iff telemetry is on too
  double p99_local_rx_us = 1500.0;  // windowed p99, local_rx hop class
  double p99_be_rx_us = 1900.0;     // windowed p99, be_rx hop class
  double max_probe_loss = 0.05;     // lagged probe loss fraction [0,1]
  double max_cpu_util = 0.95;       // fleet-max vswitch CPU utilization
  double max_session_mem = 0.95;    // fleet-max session-memory utilization
  double ewma_alpha = 0.2;          // EWMA smoothing for baselines
  std::uint32_t burn_window = 16;   // burn-rate window, in evaluated ticks
};

enum class SloRule : std::uint8_t {
  kP99LocalRx = 0,
  kP99BeRx,
  kProbeLoss,
  kCpuHeadroom,
  kSessionMem,
  kCount,
};

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(SloRule::kCount)>
    kSloRuleNames = {
        "p99_local_rx_us", "p99_be_rx_us", "probe_loss",
        "cpu_util",        "session_mem",
};

/// Name for a rule id carried in TraceEvent::a (range-checked).
std::string_view slo_rule_name(std::uint64_t rule);

/// Node-id wiring the Testbed supplies: where to attribute fleet-scope
/// violations and how many ticks probe replies may lag probes.
struct SloWiring {
  std::uint32_t fleet_node = 0;    // trace slot for latency breaches
  std::uint32_t monitor_node = 0;  // trace slot for probe-loss breaches
  std::uint32_t probe_lag_ticks = 4;
};

class SloTracker {
 public:
  /// Registers the violation counters and resolves every series id against
  /// `hub.metrics()` — construct after all gauges/histograms are
  /// registered and before start_sampler(). Installs itself as the
  /// registry's tick observer and contributes the `slo` JSON section.
  SloTracker(Hub& hub, const SloConfig& cfg, const SloWiring& wiring);

  /// Sampler-tick evaluation; allocation-free.
  void on_tick(common::TimePoint now);

  /// Appends the `slo` section object (deterministic formatting).
  void write_json(std::string& out) const;

  std::uint64_t total_violations() const;
  std::uint64_t violations(SloRule r) const {
    return rules_[static_cast<std::size_t>(r)].violations;
  }
  bool rule_active(SloRule r) const {
    return rules_[static_cast<std::size_t>(r)].active;
  }
  double burn_rate(SloRule r) const;
  const SloConfig& config() const { return cfg_; }

 private:
  struct RuleState {
    bool active = false;
    double threshold = 0.0;
    std::uint64_t ticks = 0;       // evaluated ticks (value was defined)
    std::uint64_t violations = 0;
    bool have = false;             // any evaluated tick yet
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double ewma = 0.0;
    double worst = 0.0;            // most violating value seen
    std::uint32_t worst_node = 0;
    common::TimePoint first_violation_at = -1;
    common::TimePoint last_violation_at = -1;
    std::vector<std::uint8_t> burn_ring;  // breach flags, last W ticks
    std::uint32_t burn_pos = 0;
    std::uint32_t burn_count = 0;
    MetricsRegistry::Id counter = MetricsRegistry::kInvalidId;
  };

  /// Shadow of a histogram's buckets at the previous tick, for windowed
  /// quantiles over per-tick deltas.
  struct HistWindow {
    MetricsRegistry::Id id = MetricsRegistry::kInvalidId;
    std::vector<std::uint64_t> prev;
    std::uint64_t prev_underflow = 0;
    std::uint64_t prev_overflow = 0;
    std::uint64_t prev_total = 0;
  };

  /// Indexed gauge (per-vswitch series + the node it belongs to).
  struct NodeGauge {
    MetricsRegistry::Id id;
    std::uint32_t node;
  };

  /// Windowed p99 over the bucket delta since the last tick; advances the
  /// shadow. Returns false when no new observations landed this tick.
  bool windowed_p99(HistWindow& w, double* out);

  void evaluate(SloRule r, double value, std::uint32_t node,
                common::TimePoint now);

  Hub& hub_;
  SloConfig cfg_;
  SloWiring wiring_;
  std::array<RuleState, static_cast<std::size_t>(SloRule::kCount)> rules_;
  MetricsRegistry::Id total_counter_ = MetricsRegistry::kInvalidId;

  HistWindow local_rx_;
  HistWindow be_rx_;
  std::vector<NodeGauge> cpu_gauges_;
  std::vector<NodeGauge> mem_gauges_;
  MetricsRegistry::Id probes_sent_ = MetricsRegistry::kInvalidId;
  MetricsRegistry::Id probe_replies_ = MetricsRegistry::kInvalidId;
  std::vector<double> probe_lag_ring_;  // probes_sent, lagged
  std::uint32_t probe_lag_pos_ = 0;
  std::uint64_t probe_ticks_ = 0;
};

}  // namespace nezha::telemetry
