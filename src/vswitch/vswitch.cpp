#include "src/vswitch/vswitch.h"

#include <utility>

#include "src/net/bytes.h"
#include "src/nf/stateful.h"

namespace nezha::vswitch {
namespace {

// Per-session-entry bytes: key + state allocation (fixed, or the §7.1
// variable-length average when enabled).
std::size_t state_entry_bytes(const VSwitchConfig& config) {
  const std::size_t state = config.variable_length_states
                                ? config.variable_state_avg_bytes
                                : flow::kStateAllocBytes;
  return flow::kSessionKeyBytes + state;
}
/// Extra bytes reserved when an entry caches pre-actions locally.
constexpr std::size_t kPreActionCacheBytes = flow::kPreActionsBytes;
/// FE flow-cache entry bytes (key + pre-actions, no state).
constexpr std::size_t kFeCacheEntryBytes =
    flow::kSessionKeyBytes + flow::kPreActionsBytes;

std::vector<std::uint8_t> encode_vnic_id(tables::VnicId id) {
  std::vector<std::uint8_t> out;
  net::ByteWriter w(out);
  w.u64(id);
  return out;
}

tables::VnicId decode_vnic_id(std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  return r.u64();
}

flow::SessionTableConfig with_shape(flow::SessionTableConfig base,
                                    bool pre_actions, bool state) {
  base.store_pre_actions = pre_actions;
  base.store_state = state;
  base.capacity_bytes = 0;  // capacity enforced by the vSwitch memory pool
  return base;
}

}  // namespace

VSwitch::VSwitch(sim::NodeId id, std::string name, net::Ipv4Addr underlay_ip,
                 sim::EventLoop& loop, sim::Network& network,
                 const tables::VnicServerMap& gateway_map,
                 VSwitchConfig config)
    : Node(id, std::move(name), underlay_ip, net::MacAddr(0x020000000000ULL | id)),
      config_(config),
      loop_(loop),
      network_(network),
      cpu_(config.cpu),
      rule_pool_(config.rule_memory_bytes),
      session_pool_(config.session_memory_bytes),
      learned_map_(gateway_map, config.learning_interval),
      sessions_(with_shape(config.session_config, true, true)) {}

// ---------------------------------------------------------------- vNICs

common::Status VSwitch::add_vnic(const VnicConfig& vnic_config,
                                 bool stateful_decap) {
  if (vnics_.contains(vnic_config.id)) {
    return common::make_error("vnic already exists");
  }
  Vnic v(vnic_config);
  const std::size_t bytes = v.rules()->memory_bytes();
  if (!rule_pool_.reserve(bytes)) {
    return common::make_error("rule memory exhausted (#vNICs limit)");
  }
  vnic_by_addr_[vnic_config.addr] = vnic_config.id;
  stateful_decap_[vnic_config.id] = stateful_decap;
  vnics_.emplace(vnic_config.id, std::move(v));
  return common::Status::ok_status();
}

void VSwitch::remove_vnic(tables::VnicId id) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return;
  if (it->second.has_local_tables()) {
    rule_pool_.release(it->second.rules()->memory_bytes());
  } else {
    rule_pool_.release(kBackendMetadataBytes);
  }
  vnic_by_addr_.erase(it->second.addr());
  stateful_decap_.erase(id);
  vnics_.erase(it);
}

Vnic* VSwitch::vnic(tables::VnicId id) {
  auto it = vnics_.find(id);
  return it == vnics_.end() ? nullptr : &it->second;
}

const Vnic* VSwitch::find_vnic(tables::VnicId id) const {
  auto it = vnics_.find(id);
  return it == vnics_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------ frontends

common::Status VSwitch::install_frontend(const VnicConfig& vnic_config,
                                         const tables::RuleTableSet& rules,
                                         tables::Location be_location,
                                         bool stateful_decap) {
  if (frontends_.contains(vnic_config.id)) {
    // Re-installation refreshes config (e.g. new BE location after a VM
    // live migration, §7.2).
    frontends_.at(vnic_config.id).be_location = be_location;
    return common::Status::ok_status();
  }
  const std::size_t bytes = rules.memory_bytes();
  if (!rule_pool_.reserve(bytes)) {
    return common::make_error("FE rule memory exhausted");
  }
  FrontendInstance fe{vnic_config.id,
                      vnic_config.addr,
                      rules,  // full copy: every FE holds the whole table set
                      flow::SessionTable(
                          with_shape(config_.session_config, true, false)),
                      be_location,
                      stateful_decap};
  frontend_by_addr_[vnic_config.addr] = vnic_config.id;
  frontends_.emplace(vnic_config.id, std::move(fe));
  return common::Status::ok_status();
}

void VSwitch::remove_frontend(tables::VnicId id) {
  auto it = frontends_.find(id);
  if (it == frontends_.end()) return;
  rule_pool_.release(it->second.rules.memory_bytes());
  session_pool_.release(it->second.flow_cache.size() * kFeCacheEntryBytes);
  frontend_by_addr_.erase(it->second.addr);
  frontends_.erase(it);
}

FrontendInstance* VSwitch::frontend(tables::VnicId id) {
  auto it = frontends_.find(id);
  return it == frontends_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------- BE transitions

common::Status VSwitch::begin_offload(tables::VnicId id,
                                      std::vector<tables::Location> fes,
                                      common::TimePoint dual_running_until) {
  Vnic* v = vnic(id);
  if (v == nullptr) return common::make_error("unknown vnic");
  if (v->mode() != VnicMode::kLocal) {
    return common::make_error("vnic not in local mode");
  }
  // BE metadata (FE locations + essential config) is pinned for the whole
  // offloaded lifetime (§6.2.1: ~2KB).
  if (!rule_pool_.reserve(kBackendMetadataBytes)) {
    return common::make_error("no memory for BE metadata");
  }
  v->set_fe_locations(std::move(fes));
  v->set_dual_running_until(dual_running_until);
  v->set_mode(VnicMode::kOffloadDualRunning);
  return common::Status::ok_status();
}

void VSwitch::finalize_offload(tables::VnicId id) {
  Vnic* v = vnic(id);
  if (v == nullptr || v->mode() != VnicMode::kOffloadDualRunning) return;
  // Final stage (§4.2.1): delete the local rule tables and cached flows.
  rule_pool_.release(v->release_local_tables());
  invalidate_cached_flows(id);
  v->set_mode(VnicMode::kOffloaded);
}

common::Status VSwitch::begin_fallback(tables::VnicId id,
                                       common::TimePoint dual_running_until) {
  Vnic* v = vnic(id);
  if (v == nullptr) return common::make_error("unknown vnic");
  if (v->mode() != VnicMode::kOffloaded) {
    return common::make_error("vnic not offloaded");
  }
  // Restore local tables first so the vSwitch can process packets that
  // arrive directly once senders re-learn the BE address.
  Vnic probe(v->config());
  const std::size_t bytes = probe.rules()->memory_bytes();
  if (!rule_pool_.reserve(bytes)) {
    return common::make_error("fallback would exceed local rule memory");
  }
  v->restore_local_tables();
  v->set_dual_running_until(dual_running_until);
  v->set_mode(VnicMode::kFallbackDualRunning);
  return common::Status::ok_status();
}

void VSwitch::finalize_fallback(tables::VnicId id) {
  Vnic* v = vnic(id);
  if (v == nullptr || v->mode() != VnicMode::kFallbackDualRunning) return;
  v->set_fe_locations({});
  rule_pool_.release(kBackendMetadataBytes);
  v->set_mode(VnicMode::kLocal);
}

void VSwitch::update_fe_locations(tables::VnicId id,
                                  std::vector<tables::Location> fes) {
  Vnic* v = vnic(id);
  if (v == nullptr) return;
  v->set_fe_locations(std::move(fes));
}

void VSwitch::pin_flow(tables::VnicId id, const net::FiveTuple& ft,
                       tables::Location fe) {
  const Vnic* v = vnic(id);
  if (v == nullptr) return;
  pinned_flows_[flow::SessionKey::from_packet(v->addr().vpc_id, ft)] = fe;
}

void VSwitch::unpin_flow(tables::VnicId id, const net::FiveTuple& ft) {
  const Vnic* v = vnic(id);
  if (v == nullptr) return;
  pinned_flows_.erase(flow::SessionKey::from_packet(v->addr().vpc_id, ft));
}

void VSwitch::invalidate_cached_flows(tables::VnicId id) {
  const Vnic* v = vnic(id);
  if (v == nullptr) return;
  const tables::OverlayAddr addr = v->addr();
  sessions_.for_each([&](const flow::SessionKey& key,
                         const flow::SessionEntry& entry) {
    if (key.vpc_id != addr.vpc_id) return;
    if (key.canonical_ft.src_ip != addr.ip && key.canonical_ft.dst_ip != addr.ip) {
      return;
    }
    if (entry.pre_actions.has_value()) {
      // for_each is const; drop via the non-const find below.
      auto* e = sessions_.find(key);
      e->pre_actions.reset();
      session_pool_.release(kPreActionCacheBytes);
    }
  });
}

// ------------------------------------------------------------- helpers

bool VSwitch::consume_cpu(double cycles, std::function<void()> then) {
  const CpuModel::Outcome out = cpu_.consume(cycles, loop_.now());
  if (!out.accepted) {
    counters_.inc("drop.cpu_overload");
    return false;
  }
  loop_.schedule_at(out.done, std::move(then));
  return true;
}

flow::SessionEntry* VSwitch::get_or_create_session(
    const flow::SessionKey& key) {
  if (auto* e = sessions_.find(key)) return e;
  if (!session_pool_.reserve(state_entry_bytes(config_))) {
    counters_.inc("drop.session_full");
    return nullptr;
  }
  return sessions_.find_or_create(key, loop_.now());
}

flow::SessionEntry* VSwitch::get_or_create_cache_entry(
    FrontendInstance& fe, const flow::SessionKey& key) {
  if (auto* e = fe.flow_cache.find(key)) return e;
  if (!session_pool_.reserve(kFeCacheEntryBytes)) {
    counters_.inc("drop.fe_cache_full");
    return nullptr;
  }
  return fe.flow_cache.find_or_create(key, loop_.now());
}

const flow::PreActions& VSwitch::ensure_pre_actions(
    flow::SessionEntry& entry, const tables::RuleTableSet& rules,
    const net::FiveTuple& tx_ft, double* cycles, flow::PreActions& fallback) {
  if (entry.pre_actions.has_value() &&
      entry.pre_actions->rule_version == rules.version()) {
    ++fast_hits_;
    *cycles += config_.cost.session_lookup_cycles;
    return *entry.pre_actions;
  }
  // Miss (first packet) or stale (rule tables updated): run the chain.
  ++slow_lookups_;
  *cycles += rules.lookup_cycles(config_.cost) +
             config_.cost.session_insert_cycles;
  fallback = rules.lookup(tx_ft);
  const bool had_cache = entry.pre_actions.has_value();
  if (had_cache || session_pool_.reserve(kPreActionCacheBytes)) {
    entry.pre_actions = fallback;
    return *entry.pre_actions;
  }
  counters_.inc("cache_insert_fail");
  return fallback;
}

std::optional<tables::Location> VSwitch::resolve_dst(
    const tables::OverlayAddr& addr, const net::FiveTuple& ft) {
  const tables::VnicServerMap::Entry* entry =
      learned_map_.resolve(addr, loop_.now());
  if (entry == nullptr || entry->placement.locations.empty()) {
    return std::nullopt;
  }
  const auto& locs = entry->placement.locations;
  if (locs.size() == 1) return locs[0];
  // Offloaded destination: plain 5-tuple hashing across its FEs (§3.2.3).
  const net::FiveTuple hash_ft =
      config_.session_consistent_fe_hash ? ft.canonical() : ft;
  return locs[net::flow_hash(hash_ft, fe_hash_seed_) % locs.size()];
}

void VSwitch::send_encapped(net::Packet pkt, const tables::Location& dst) {
  pkt.encap(underlay_ip(), mac(), dst.ip, dst.mac);
  network_.send(id(), dst.ip, std::move(pkt));
}

void VSwitch::mirror_copy(const net::Packet& pkt,
                          const flow::DirPreAction& pre) {
  if (!pre.mirror || !pre.mirror_target.valid()) return;
  net::Packet copy = pkt;
  copy.overlay.reset();
  copy.carrier.reset();
  ++mirrored_;
  send_encapped(std::move(copy), tables::Location{pre.mirror_target.ip,
                                                  pre.mirror_target.mac});
}

void VSwitch::release_session_entry(const flow::SessionEntry& entry) {
  session_pool_.release(state_entry_bytes(config_));
  if (entry.pre_actions.has_value()) {
    session_pool_.release(kPreActionCacheBytes);
  }
}

void VSwitch::start_aging() {
  if (aging_started_) return;
  aging_started_ = true;
  loop_.schedule_periodic(config_.aging_period, [this]() {
    sessions_.age_out(loop_.now(),
                      [this](const flow::SessionKey&,
                             const flow::SessionEntry& e) {
                        release_session_entry(e);
                      });
    for (auto& [id, fe] : frontends_) {
      fe.flow_cache.age_out(loop_.now(),
                            [this](const flow::SessionKey&,
                                   const flow::SessionEntry&) {
                              session_pool_.release(kFeCacheEntryBytes);
                            });
    }
  });
}

// ------------------------------------------------------------- TX entry

void VSwitch::from_vm(tables::VnicId vnic_id, net::Packet pkt) {
  Vnic* v = vnic(vnic_id);
  if (v == nullptr) {
    counters_.inc("drop.no_vnic");
    return;
  }
  pkt.vpc_id = v->addr().vpc_id;
  switch (v->mode()) {
    case VnicMode::kLocal:
    case VnicMode::kOffloadDualRunning:
    case VnicMode::kFallbackDualRunning:
      // Tables are local in all dual-running shapes: process locally.
      local_tx(*v, std::move(pkt));
      break;
    case VnicMode::kOffloaded:
      be_tx(*v, std::move(pkt));
      break;
  }
}

void VSwitch::local_tx(Vnic& v, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());
  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  flow::PreActions scratch;
  const flow::PreActions& pre =
      ensure_pre_actions(*entry, *v.rules(), pkt.inner.ft, &cycles, scratch);

  entry->state.observe(flow::Direction::kTx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);  // FIN/RST may have shrunk the aging deadline
  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kTx, pre, entry->state);
  if (verdict == flow::Verdict::kDrop) {
    counters_.inc("drop.acl");
    local_cycles_ += cycles;
    consume_cpu(cycles, [] {});
    return;
  }

  // QoS pre-action: VM/flow-level rate limiting enforced at the single
  // node that sees every packet of the flow (no distributed rate-limiting
  // coordination needed, §2.3.3).
  if (!entry->qos_admit(pre.tx.rate_limit_kbps, pkt.wire_size() * 8,
                        loop_.now())) {
    counters_.inc("drop.qos");
    consume_cpu(cycles, [] {});
    return;
  }

  // Traffic mirroring: duplicate toward the collector before any rewrite.
  if (pre.tx.mirror) {
    cycles += config_.cost.mirror_cycles;
    mirror_copy(pkt, pre.tx);
  }

  // NAT rewrite recipe from the pre-actions.
  if (pre.tx.nat_enabled) {
    pkt.inner.ft.src_ip = pre.tx.nat_ip;
    pkt.inner.ft.src_port = pre.tx.nat_port;
  }

  cycles += config_.cost.encap_cycles;
  // Stateful decap (§5.2): responses return to the recorded LB address.
  std::optional<tables::Location> dst;
  if (entry->state.decap_src_ip.value() != 0) {
    dst = tables::Location{entry->state.decap_src_ip, net::MacAddr(0)};
  } else if (pre.tx.next_hop.valid()) {
    dst = tables::Location{pre.tx.next_hop.ip, pre.tx.next_hop.mac};
  } else {
    dst = resolve_dst(tables::OverlayAddr{pkt.vpc_id, pkt.inner.ft.dst_ip},
                      pkt.inner.ft);
  }
  if (!dst) {
    counters_.inc("drop.no_route");
    local_cycles_ += cycles;
    consume_cpu(cycles, [] {});
    return;
  }
  local_cycles_ += cycles;
  consume_cpu(cycles, [this, pkt = std::move(pkt), d = *dst]() mutable {
    send_encapped(std::move(pkt), d);
  });
}

void VSwitch::be_tx(Vnic& v, net::Packet pkt) {
  if (v.fe_locations().empty()) {
    counters_.inc("drop.no_frontend");
    return;
  }
  double cycles = (config_.cost.parse_cycles +
                   config_.cost.state_update_cycles +
                   config_.cost.carrier_codec_cycles +
                   config_.cost.encap_cycles +
                   config_.cost.per_byte_cycles *
                       static_cast<double>(pkt.inner.wire_size())) *
                  config_.cost.be_hw_accel_factor;  // §7.3 BE acceleration
  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  // §5.1 TX workflow: query/initialize the state, then ship a snapshot of
  // it to the FE inside the packet.
  entry->state.observe(flow::Direction::kTx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);

  net::CarrierHeader carrier;
  carrier.add(net::CarrierTlvType::kVnicId, encode_vnic_id(v.id()));
  carrier.add(net::CarrierTlvType::kStateSnapshot,
              entry->state.serialize_snapshot());
  pkt.carrier = std::move(carrier);

  // Flow-level (not packet-level) load balancing across FEs (§3.2.3),
  // unless the flow was pinned to a dedicated FE (§7.5 elephant isolation).
  const auto& fes = v.fe_locations();
  const net::FiveTuple hash_ft = config_.session_consistent_fe_hash
                                     ? pkt.inner.ft.canonical()
                                     : pkt.inner.ft;
  tables::Location fe = fes[net::flow_hash(hash_ft, fe_hash_seed_) %
                            fes.size()];
  if (auto pit = pinned_flows_.find(key); pit != pinned_flows_.end()) {
    fe = pit->second;
  }
  local_cycles_ += cycles;
  consume_cpu(cycles, [this, pkt = std::move(pkt), fe]() mutable {
    send_encapped(std::move(pkt), fe);
  });
}

// ------------------------------------------------------------ RX entry

void VSwitch::receive(net::Packet pkt) {
  if (!pkt.overlay) {
    if (pkt.inner.ft.dst_port == kHealthProbePort) {
      health_probe_reply(pkt);
    } else if (pkt.inner.ft.dst_port == kLinkProbeReplyPort &&
               link_probe_reply_) {
      link_probe_reply_(pkt);
    } else {
      counters_.inc("drop.unroutable");
    }
    return;
  }
  if (pkt.overlay->dst_ip != underlay_ip()) {
    counters_.inc("drop.misdelivered");
    return;
  }

  if (pkt.carrier) {
    const net::CarrierTlv* vid = pkt.carrier->find(net::CarrierTlvType::kVnicId);
    if (vid == nullptr) {
      counters_.inc("drop.bad_carrier");
      return;
    }
    const tables::VnicId vnic_id = decode_vnic_id(vid->value);
    if (pkt.carrier->flags.is_notify) {
      if (Vnic* v = vnic(vnic_id)) be_notify(*v, pkt);
      else counters_.inc("drop.no_vnic");
      return;
    }
    if (pkt.carrier->find(net::CarrierTlvType::kStateSnapshot) != nullptr) {
      if (FrontendInstance* fe = frontend(vnic_id)) fe_tx(*fe, std::move(pkt));
      else counters_.inc("drop.no_frontend");
      return;
    }
    if (pkt.carrier->find(net::CarrierTlvType::kPreActions) != nullptr) {
      if (Vnic* v = vnic(vnic_id)) be_rx(*v, std::move(pkt));
      else counters_.inc("drop.no_vnic");
      return;
    }
    counters_.inc("drop.bad_carrier");
    return;
  }

  // Plain overlay data packet: dispatch on the inner destination.
  const tables::OverlayAddr dst{pkt.vpc_id, pkt.inner.ft.dst_ip};
  if (auto it = frontend_by_addr_.find(dst); it != frontend_by_addr_.end()) {
    fe_rx(frontends_.at(it->second), std::move(pkt));
    return;
  }
  if (auto it = vnic_by_addr_.find(dst); it != vnic_by_addr_.end()) {
    Vnic& v = vnics_.at(it->second);
    if (v.has_local_tables()) {
      // Local mode or a dual-running stage: retained tables serve senders
      // that have not learned the new placement yet (gray flow, Fig 7).
      local_rx(v, std::move(pkt));
    } else {
      // Final offloaded stage: this packet followed a stale route; it can
      // no longer be processed here (§4.1) — rely on retransmission.
      counters_.inc("drop.stale_route");
    }
    return;
  }
  counters_.inc("drop.no_vnic");
}

void VSwitch::local_rx(Vnic& v, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles + config_.cost.decap_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());
  const net::Ipv4Addr overlay_src = pkt.overlay->src_ip;
  pkt.decap();

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  flow::PreActions scratch;
  // RX packets are oriented responder→initiator from the vNIC's viewpoint;
  // the rule chain is keyed by the TX-oriented tuple.
  const flow::PreActions& pre = ensure_pre_actions(
      *entry, *v.rules(), pkt.inner.ft.reversed(), &cycles, scratch);

  entry->state.observe(flow::Direction::kRx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);
  entry->state.stats_mode = pre.rx.stats_mode;
  if (stateful_decap_[v.id()] && entry->state.decap_src_ip.value() == 0) {
    entry->state.decap_src_ip = overlay_src;
  }

  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kRx, pre, entry->state);
  if (verdict == flow::Verdict::kDrop) {
    counters_.inc("drop.acl");
    local_cycles_ += cycles;
    consume_cpu(cycles, [] {});
    return;
  }
  // Traffic mirroring for the RX direction, at the pre-action evaluation
  // point (locally here; at the FE when offloaded).
  if (pre.rx.mirror) {
    cycles += config_.cost.mirror_cycles;
    mirror_copy(pkt, pre.rx);
  }
  local_cycles_ += cycles;
  const tables::VnicId vid = v.id();
  const tables::VnicId adapter = v.config().parent.value_or(vid);
  consume_cpu(cycles, [this, vid, adapter, pkt = std::move(pkt)]() {
    ++vm_deliveries_;
    ++adapter_deliveries_[adapter];
    if (vm_delivery_) vm_delivery_(vid, pkt);
  });
}

void VSwitch::be_rx(Vnic& v, net::Packet pkt) {
  double cycles = (config_.cost.parse_cycles + config_.cost.decap_cycles +
                   config_.cost.carrier_codec_cycles +
                   config_.cost.state_update_cycles +
                   config_.cost.per_byte_cycles *
                       static_cast<double>(pkt.inner.wire_size())) *
                  config_.cost.be_hw_accel_factor;  // §7.3 BE acceleration

  const net::CarrierTlv* pre_tlv =
      pkt.carrier->find(net::CarrierTlvType::kPreActions);
  auto pre = flow::PreActions::parse(pre_tlv->value);
  if (!pre.ok()) {
    counters_.inc("drop.bad_carrier");
    return;
  }
  const net::CarrierTlv* decap_tlv =
      pkt.carrier->find(net::CarrierTlvType::kDecapInfo);

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  // §5.1 RX workflow: initialize/refresh state, adopt the rule-table-derived
  // state carried in the packet (§3.2.2: the FE does not verify, it informs).
  entry->state.observe(flow::Direction::kRx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);
  entry->state.stats_mode = pre.value().rx.stats_mode;
  if (decap_tlv != nullptr && stateful_decap_[v.id()] &&
      entry->state.decap_src_ip.value() == 0) {
    net::ByteReader r(decap_tlv->value);
    entry->state.decap_src_ip = net::Ipv4Addr(r.u32());
  }

  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kRx, pre.value(), entry->state);
  if (verdict == flow::Verdict::kDrop) {
    counters_.inc("drop.acl");
    local_cycles_ += cycles;
    consume_cpu(cycles, [] {});
    return;
  }
  local_cycles_ += cycles;
  pkt.decap();
  const tables::VnicId vid = v.id();
  const tables::VnicId adapter = v.config().parent.value_or(vid);
  consume_cpu(cycles, [this, vid, adapter, pkt = std::move(pkt)]() {
    ++vm_deliveries_;
    ++adapter_deliveries_[adapter];
    if (vm_delivery_) vm_delivery_(vid, pkt);
  });
}

void VSwitch::be_notify(Vnic& v, const net::Packet& pkt) {
  (void)v;
  double cycles = config_.cost.parse_cycles +
                  config_.cost.carrier_codec_cycles +
                  config_.cost.state_update_cycles;
  const net::CarrierTlv* notify =
      pkt.carrier->find(net::CarrierTlvType::kNotify);
  if (notify == nullptr || notify->value.empty()) {
    counters_.inc("drop.bad_carrier");
    return;
  }
  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  if (flow::SessionEntry* entry = sessions_.find(key)) {
    entry->state.stats_mode =
        static_cast<flow::StatsMode>(notify->value.front());
  }
  counters_.inc("notify_received");
  local_cycles_ += cycles;
  consume_cpu(cycles, [] {});
}

void VSwitch::fe_tx(FrontendInstance& fe, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles + config_.cost.decap_cycles +
                  config_.cost.carrier_codec_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());

  const net::CarrierTlv* snap_tlv =
      pkt.carrier->find(net::CarrierTlvType::kStateSnapshot);
  auto snapshot = flow::SessionState::parse_snapshot(snap_tlv->value);
  if (!snapshot.ok()) {
    counters_.inc("drop.bad_carrier");
    return;
  }

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_cache_entry(fe, key);
  flow::PreActions scratch;
  const std::uint64_t lookups_before = slow_lookups_;
  const flow::PreActions& pre =
      (entry != nullptr)
          ? ensure_pre_actions(*entry, fe.rules, pkt.inner.ft, &cycles, scratch)
          : (scratch = fe.rules.lookup(pkt.inner.ft),
             cycles += fe.rules.lookup_cycles(config_.cost), scratch);
  const bool chain_ran = slow_lookups_ != lookups_before || entry == nullptr;
  if (!chain_ran) cycles *= config_.cost.fe_cache_hit_accel_factor;

  // The FE executes the same finalization code as before Nezha, with the
  // state arriving in the packet instead of a local table (Fig 5).
  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kTx, pre, snapshot.value());

  // Notify the BE when the rule-table-derived state differs from what the
  // packet carried (§3.2.2) — only on chain executions, which are rare.
  if (chain_ran && pre.tx.stats_mode != snapshot.value().stats_mode) {
    net::Packet notify_pkt = pkt;  // same inner flow identity
    notify_pkt.inner.payload_len = 0;
    net::CarrierHeader carrier;
    carrier.flags.is_notify = true;
    carrier.add(net::CarrierTlvType::kVnicId, encode_vnic_id(fe.vnic));
    carrier.add(net::CarrierTlvType::kNotify,
                {static_cast<std::uint8_t>(pre.tx.stats_mode)});
    notify_pkt.carrier = std::move(carrier);
    notify_pkt.overlay.reset();
    ++notify_sent_;
    cycles += config_.cost.carrier_codec_cycles;
    const tables::Location be = fe.be_location;
    consume_cpu(config_.cost.carrier_codec_cycles,
                [this, notify_pkt = std::move(notify_pkt), be]() mutable {
                  send_encapped(std::move(notify_pkt), be);
                });
  }

  if (verdict == flow::Verdict::kDrop) {
    counters_.inc("drop.acl");
    fe_cycles_ += cycles;
    consume_cpu(cycles, [] {});
    return;
  }

  if (entry != nullptr &&
      !entry->qos_admit(pre.tx.rate_limit_kbps, pkt.wire_size() * 8,
                        loop_.now())) {
    counters_.inc("drop.qos");
    consume_cpu(cycles, [] {});
    return;
  }

  if (pre.tx.mirror) {
    cycles += config_.cost.mirror_cycles;
    net::Packet unwrapped = pkt;
    unwrapped.decap();
    mirror_copy(unwrapped, pre.tx);
  }

  if (pre.tx.nat_enabled) {
    pkt.inner.ft.src_ip = pre.tx.nat_ip;
    pkt.inner.ft.src_port = pre.tx.nat_port;
  }

  cycles += config_.cost.encap_cycles;
  std::optional<tables::Location> dst;
  if (snapshot.value().decap_src_ip.value() != 0) {
    dst = tables::Location{snapshot.value().decap_src_ip, net::MacAddr(0)};
  } else if (pre.tx.next_hop.valid()) {
    dst = tables::Location{pre.tx.next_hop.ip, pre.tx.next_hop.mac};
  } else {
    dst = resolve_dst(tables::OverlayAddr{pkt.vpc_id, pkt.inner.ft.dst_ip},
                      pkt.inner.ft);
  }
  if (!dst) {
    counters_.inc("drop.no_route");
    fe_cycles_ += cycles;
    consume_cpu(cycles, [] {});
    return;
  }
  fe_cycles_ += cycles;
  pkt.decap();  // strip the BE's overlay + carrier; re-encap toward the dst
  consume_cpu(cycles, [this, pkt = std::move(pkt), d = *dst]() mutable {
    send_encapped(std::move(pkt), d);
  });
}

void VSwitch::fe_rx(FrontendInstance& fe, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles + config_.cost.decap_cycles +
                  config_.cost.carrier_codec_cycles +
                  config_.cost.encap_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());

  // Capture information the BE will lose once we rewrite the outer header
  // (§3.2.2 "rule table not involved"): the overlay source IP.
  const net::Ipv4Addr overlay_src = pkt.overlay->src_ip;

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_cache_entry(fe, key);
  flow::PreActions scratch;
  const std::uint64_t lookups_before = slow_lookups_;
  const flow::PreActions& pre =
      (entry != nullptr)
          ? ensure_pre_actions(*entry, fe.rules, pkt.inner.ft.reversed(),
                               &cycles, scratch)
          : (scratch = fe.rules.lookup(pkt.inner.ft.reversed()),
             cycles += fe.rules.lookup_cycles(config_.cost), scratch);
  const bool chain_ran = slow_lookups_ != lookups_before || entry == nullptr;
  if (!chain_ran) cycles *= config_.cost.fe_cache_hit_accel_factor;

  // Traffic mirroring for the RX direction happens where the pre-actions
  // are evaluated: at the FE.
  if (pre.rx.mirror) {
    cycles += config_.cost.mirror_cycles;
    net::Packet unwrapped = pkt;
    unwrapped.decap();
    mirror_copy(unwrapped, pre.rx);
  }

  // Annotate the packet with the pre-actions and forward to the BE, which
  // holds the state needed for the final decision (blue flow, Fig 5).
  pkt.decap();
  net::CarrierHeader carrier;
  carrier.flags.from_frontend = true;
  carrier.add(net::CarrierTlvType::kVnicId, encode_vnic_id(fe.vnic));
  carrier.add(net::CarrierTlvType::kPreActions, pre.serialize());
  if (fe.stateful_decap) {
    std::vector<std::uint8_t> ip_bytes;
    net::ByteWriter w(ip_bytes);
    w.u32(overlay_src.value());
    carrier.add(net::CarrierTlvType::kDecapInfo, std::move(ip_bytes));
  }
  pkt.carrier = std::move(carrier);

  fe_cycles_ += cycles;
  const tables::Location be = fe.be_location;
  consume_cpu(cycles, [this, pkt = std::move(pkt), be]() mutable {
    send_encapped(std::move(pkt), be);
  });
}

void VSwitch::health_probe_reply(const net::Packet& pkt) {
  // Flow-direct rule: probes bypass the normal pipeline (§4.4).
  net::Packet reply = net::make_udp_packet(pkt.inner.ft.reversed(), 0, 0);
  reply.id = pkt.id;  // echo the probe id so the monitor can match it
  counters_.inc("probe_replied");
  consume_cpu(100.0, [this, reply = std::move(reply)]() mutable {
    network_.send(id(), reply.inner.ft.dst_ip, std::move(reply));
  });
}

}  // namespace nezha::vswitch
