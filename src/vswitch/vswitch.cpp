#include "src/vswitch/vswitch.h"

#include <utility>

#include "src/net/bytes.h"
#include "src/nf/stateful.h"
#include "src/telemetry/hub.h"

namespace nezha::vswitch {
namespace {

// Per-session-entry bytes: key + state allocation (fixed, or the §7.1
// variable-length average when enabled).
std::size_t state_entry_bytes(const VSwitchConfig& config) {
  const std::size_t state = config.variable_length_states
                                ? config.variable_state_avg_bytes
                                : flow::kStateAllocBytes;
  return flow::kSessionKeyBytes + state;
}
/// Extra bytes reserved when an entry caches pre-actions locally.
constexpr std::size_t kPreActionCacheBytes = flow::kPreActionsBytes;
/// FE flow-cache entry bytes (key + pre-actions, no state).
constexpr std::size_t kFeCacheEntryBytes =
    flow::kSessionKeyBytes + flow::kPreActionsBytes;

constexpr std::size_t kVnicIdWireSize = 8;

/// Encodes the vNIC id TLV directly into the carrier's inline arena.
void add_vnic_id_tlv(net::CarrierHeader& c, tables::VnicId id) {
  net::FixedWriter w(
      c.add_uninit(net::CarrierTlvType::kVnicId, kVnicIdWireSize));
  w.u64(id);
}

tables::VnicId decode_vnic_id(std::span<const std::uint8_t> bytes) {
  net::ByteReader r(bytes);
  return r.u64();
}

flow::SessionTableConfig with_shape(flow::SessionTableConfig base,
                                    bool pre_actions, bool state) {
  base.store_pre_actions = pre_actions;
  base.store_state = state;
  base.capacity_bytes = 0;  // capacity enforced by the vSwitch memory pool
  return base;
}

}  // namespace

VSwitch::VSwitch(sim::NodeId id, std::string name, net::Ipv4Addr underlay_ip,
                 sim::EventLoop& loop, sim::Network& network,
                 const tables::VnicServerMap& gateway_map,
                 VSwitchConfig config)
    : Node(id, std::move(name), underlay_ip, net::MacAddr(0x020000000000ULL | id)),
      config_(config),
      loop_(loop),
      network_(network),
      cpu_(config.cpu),
      rule_pool_(config.rule_memory_bytes),
      session_pool_(config.session_memory_bytes),
      learned_map_(gateway_map, config.learning_interval),
      sessions_(with_shape(config.session_config, true, true)) {
  counters_.register_ids(kCounterNames);
}

// ---------------------------------------------------------------- vNICs

common::Status VSwitch::add_vnic(const VnicConfig& vnic_config,
                                 bool stateful_decap) {
  if (vnics_.contains(vnic_config.id)) {
    return common::make_error("vnic already exists");
  }
  Vnic v(vnic_config);
  v.set_stateful_decap(stateful_decap);
  const std::size_t bytes = v.rules()->memory_bytes();
  if (!rule_pool_.reserve(bytes)) {
    return common::make_error("rule memory exhausted (#vNICs limit)");
  }
  auto [it, inserted] = vnics_.emplace(vnic_config.id, std::move(v));
  dispatch_by_addr_[vnic_config.addr].vnic = &it->second;
  it->second.set_delivery_counter(
      &adapter_deliveries_[vnic_config.parent.value_or(vnic_config.id)]);
  return common::Status::ok_status();
}

void VSwitch::remove_vnic(tables::VnicId id) {
  auto it = vnics_.find(id);
  if (it == vnics_.end()) return;
  if (it->second.has_local_tables()) {
    rule_pool_.release(it->second.rules()->memory_bytes());
  } else {
    rule_pool_.release(kBackendMetadataBytes);
  }
  if (auto dit = dispatch_by_addr_.find(it->second.addr());
      dit != dispatch_by_addr_.end()) {
    dit->second.vnic = nullptr;
    if (dit->second.fe == nullptr) dispatch_by_addr_.erase(dit);
  }
  vnics_.erase(it);
}

Vnic* VSwitch::vnic(tables::VnicId id) {
  auto it = vnics_.find(id);
  return it == vnics_.end() ? nullptr : &it->second;
}

const Vnic* VSwitch::find_vnic(tables::VnicId id) const {
  auto it = vnics_.find(id);
  return it == vnics_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------ frontends

common::Status VSwitch::install_frontend(const VnicConfig& vnic_config,
                                         const tables::RuleTableSet& rules,
                                         tables::Location be_location,
                                         bool stateful_decap) {
  if (frontends_.contains(vnic_config.id)) {
    // Re-installation refreshes config (e.g. new BE location after a VM
    // live migration, §7.2).
    frontends_.at(vnic_config.id).be_location = be_location;
    return common::Status::ok_status();
  }
  const std::size_t bytes = rules.memory_bytes();
  if (!rule_pool_.reserve(bytes)) {
    return common::make_error("FE rule memory exhausted");
  }
  FrontendInstance fe{vnic_config.id,
                      vnic_config.addr,
                      rules,  // full copy: every FE holds the whole table set
                      flow::SessionTable(
                          with_shape(config_.session_config, true, false)),
                      be_location,
                      stateful_decap};
  auto [it, inserted] = frontends_.emplace(vnic_config.id, std::move(fe));
  dispatch_by_addr_[vnic_config.addr].fe = &it->second;
  return common::Status::ok_status();
}

void VSwitch::remove_frontend(tables::VnicId id) {
  auto it = frontends_.find(id);
  if (it == frontends_.end()) return;
  rule_pool_.release(it->second.rules.memory_bytes());
  session_pool_.release(it->second.flow_cache.size() * kFeCacheEntryBytes);
  if (auto dit = dispatch_by_addr_.find(it->second.addr);
      dit != dispatch_by_addr_.end()) {
    dit->second.fe = nullptr;
    if (dit->second.vnic == nullptr) dispatch_by_addr_.erase(dit);
  }
  frontends_.erase(it);
}

FrontendInstance* VSwitch::frontend(tables::VnicId id) {
  auto it = frontends_.find(id);
  return it == frontends_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------- BE transitions

common::Status VSwitch::begin_offload(tables::VnicId id,
                                      std::vector<tables::Location> fes,
                                      common::TimePoint dual_running_until) {
  Vnic* v = vnic(id);
  if (v == nullptr) return common::make_error("unknown vnic");
  if (v->mode() != VnicMode::kLocal) {
    return common::make_error("vnic not in local mode");
  }
  // BE metadata (FE locations + essential config) is pinned for the whole
  // offloaded lifetime (§6.2.1: ~2KB).
  if (!rule_pool_.reserve(kBackendMetadataBytes)) {
    return common::make_error("no memory for BE metadata");
  }
  v->set_fe_locations(std::move(fes));
  v->set_dual_running_until(dual_running_until);
  v->set_mode(VnicMode::kOffloadDualRunning);
  record_mode(id, VnicMode::kLocal, VnicMode::kOffloadDualRunning);
  return common::Status::ok_status();
}

void VSwitch::finalize_offload(tables::VnicId id) {
  Vnic* v = vnic(id);
  if (v == nullptr || v->mode() != VnicMode::kOffloadDualRunning) return;
  // Final stage (§4.2.1): delete the local rule tables and cached flows.
  rule_pool_.release(v->release_local_tables());
  invalidate_cached_flows(id);
  v->set_mode(VnicMode::kOffloaded);
  record_mode(id, VnicMode::kOffloadDualRunning, VnicMode::kOffloaded);
}

common::Status VSwitch::begin_fallback(tables::VnicId id,
                                       common::TimePoint dual_running_until) {
  Vnic* v = vnic(id);
  if (v == nullptr) return common::make_error("unknown vnic");
  if (v->mode() != VnicMode::kOffloaded) {
    return common::make_error("vnic not offloaded");
  }
  // Restore local tables first so the vSwitch can process packets that
  // arrive directly once senders re-learn the BE address.
  Vnic probe(v->config());
  const std::size_t bytes = probe.rules()->memory_bytes();
  if (!rule_pool_.reserve(bytes)) {
    return common::make_error("fallback would exceed local rule memory");
  }
  v->restore_local_tables();
  v->set_dual_running_until(dual_running_until);
  v->set_mode(VnicMode::kFallbackDualRunning);
  record_mode(id, VnicMode::kOffloaded, VnicMode::kFallbackDualRunning);
  return common::Status::ok_status();
}

void VSwitch::finalize_fallback(tables::VnicId id) {
  Vnic* v = vnic(id);
  if (v == nullptr || v->mode() != VnicMode::kFallbackDualRunning) return;
  v->set_fe_locations({});
  rule_pool_.release(kBackendMetadataBytes);
  v->set_mode(VnicMode::kLocal);
  record_mode(id, VnicMode::kFallbackDualRunning, VnicMode::kLocal);
}

void VSwitch::update_fe_locations(tables::VnicId id,
                                  std::vector<tables::Location> fes) {
  Vnic* v = vnic(id);
  if (v == nullptr) return;
  v->set_fe_locations(std::move(fes));
}

void VSwitch::pin_flow(tables::VnicId id, const net::FiveTuple& ft,
                       tables::Location fe) {
  const Vnic* v = vnic(id);
  if (v == nullptr) return;
  pinned_flows_[flow::SessionKey::from_packet(v->addr().vpc_id, ft)] = fe;
}

void VSwitch::unpin_flow(tables::VnicId id, const net::FiveTuple& ft) {
  const Vnic* v = vnic(id);
  if (v == nullptr) return;
  pinned_flows_.erase(flow::SessionKey::from_packet(v->addr().vpc_id, ft));
}

void VSwitch::invalidate_cached_flows(tables::VnicId id) {
  const Vnic* v = vnic(id);
  if (v == nullptr) return;
  const tables::OverlayAddr addr = v->addr();
  sessions_.for_each([&](const flow::SessionKey& key,
                         const flow::SessionEntry& entry) {
    if (key.vpc_id != addr.vpc_id) return;
    if (key.canonical_ft.src_ip != addr.ip && key.canonical_ft.dst_ip != addr.ip) {
      return;
    }
    if (entry.pre_actions.has_value()) {
      // for_each is const; drop via the non-const find below.
      auto* e = sessions_.find(key);
      e->pre_actions.reset();
      session_pool_.release(kPreActionCacheBytes);
    }
  });
}

// ------------------------------------------------------------- helpers

void VSwitch::set_telemetry(telemetry::Hub* hub) {
  telemetry_ = hub;
  if (hub != nullptr) {
    // Shared per-hop-class latency histograms (µs from packet creation to
    // VM delivery); idempotent across vSwitches — one fleet-wide series.
    lat_local_rx_us_ =
        hub->metrics().histogram("latency.local_rx_us", 0.0, 2000.0, 200);
    lat_be_rx_us_ =
        hub->metrics().histogram("latency.be_rx_us", 0.0, 2000.0, 200);
  }
}

void VSwitch::record_cpu(telemetry::EventKind kind, telemetry::Stage stage,
                         const net::Packet* pkt, double cycles,
                         common::TimePoint done) {
  if (telemetry_ == nullptr) return;
  telemetry::TraceEvent e;
  e.at = loop_.now();
  e.node = id();
  e.kind = kind;
  e.detail = static_cast<std::uint8_t>(stage);
  e.a = static_cast<std::uint64_t>(cycles);
  e.b = static_cast<std::uint64_t>(done);
  if (pkt != nullptr) {
    e.packet_id = pkt->id;
    e.flow = net::flow_hash(pkt->inner.ft.canonical(), 0);
  }
  telemetry_->record(e);
}

void VSwitch::record_mode(tables::VnicId vnic, VnicMode from, VnicMode to) {
  if (telemetry_ == nullptr) return;
  telemetry::TraceEvent e;
  e.at = loop_.now();
  e.node = id();
  e.kind = telemetry::EventKind::kVnicMode;
  e.detail = telemetry::pack_mode_transition(static_cast<std::uint8_t>(from),
                                             static_cast<std::uint8_t>(to));
  e.a = vnic;
  telemetry_->record(e);
}

bool VSwitch::consume_cpu(double cycles, telemetry::Stage stage,
                          std::function<void()> then) {
  const CpuModel::Outcome out = cpu_.consume(cycles, loop_.now());
  if (!out.accepted) {
    inc(Ctr::kDropCpuOverload);
    record_cpu(telemetry::EventKind::kCpuReject, stage, nullptr, cycles, 0);
    return false;
  }
  record_cpu(telemetry::EventKind::kCpuOpStart, stage, nullptr, cycles,
             out.done);
  loop_.schedule_at(out.done, std::move(then));
  return true;
}

void VSwitch::consume_cpu_noop(double cycles, telemetry::Stage stage) {
  const CpuModel::Outcome out = cpu_.consume(cycles, loop_.now());
  if (!out.accepted) {
    inc(Ctr::kDropCpuOverload);
    record_cpu(telemetry::EventKind::kCpuReject, stage, nullptr, cycles, 0);
    return;
  }
  record_cpu(telemetry::EventKind::kCpuOpStart, stage, nullptr, cycles,
             out.done);
  loop_.schedule_raw_at(out.done, [](void*, std::uint64_t) {}, nullptr);
}

void VSwitch::opq_push(std::uint32_t slot) {
  if (opq_count_ == op_queue_.size()) {
    // Grow and linearize (head back to index 0); capacity stays a power of
    // two so the index math below is a mask.
    std::vector<std::uint32_t> bigger(op_queue_.empty() ? 64
                                                        : op_queue_.size() * 2);
    for (std::size_t i = 0; i < opq_count_; ++i) {
      bigger[i] = op_queue_[(opq_head_ + i) & (op_queue_.size() - 1)];
    }
    op_queue_ = std::move(bigger);
    opq_head_ = 0;
  }
  op_queue_[(opq_head_ + opq_count_) & (op_queue_.size() - 1)] = slot;
  ++opq_count_;
}

void VSwitch::schedule_op(std::uint32_t slot, common::TimePoint done) {
  const common::Duration w = config_.cpu_burst_window;
  if (w == 0) {
    loop_.schedule_raw_at(done, &VSwitch::run_op_thunk, this, slot);
    return;
  }
  op_slab_[slot].done = done;
  opq_push(slot);
  if (!opq_drain_scheduled_) {
    opq_drain_scheduled_ = true;
    loop_.schedule_raw_at((done + w - 1) / w * w, &VSwitch::op_drain_thunk,
                          this, 0);
  }
}

void VSwitch::op_drain() {
  // opq_drain_scheduled_ stays true throughout: ops queued by re-entrant
  // datapath work (run_op → VM delivery → from_vm) join this queue and are
  // covered either by this loop or by the reschedule below, so exactly one
  // drain event is outstanding whenever the queue is non-empty.
  const common::TimePoint now = loop_.now();
  std::size_t budget = kCpuBurst;
  while (opq_count_ > 0 && budget > 0 && op_slab_[opq_front()].done <= now) {
    const std::uint32_t slot = opq_front();
    opq_head_ = (opq_head_ + 1) & (op_queue_.size() - 1);
    --opq_count_;
    --budget;
    run_op(slot);
  }
  if (opq_count_ == 0) {
    opq_drain_scheduled_ = false;
    return;
  }
  const common::Duration w = config_.cpu_burst_window;
  const common::TimePoint front_done = op_slab_[opq_front()].done;
  // Budget exhausted at this timestamp → continue now (later event seq);
  // otherwise sleep until the front op's window boundary.
  const common::TimePoint next =
      front_done <= now ? now : (front_done + w - 1) / w * w;
  loop_.schedule_raw_at(next, &VSwitch::op_drain_thunk, this, 0);
}

std::uint32_t VSwitch::alloc_op_slot() {
  if (op_free_.empty()) {
    op_slab_.emplace_back();
    // The free list never outgrows the slab, so matching its capacity makes
    // the completion-side push_back allocation-free.
    op_free_.reserve(op_slab_.capacity());
    return static_cast<std::uint32_t>(op_slab_.size() - 1);
  }
  const std::uint32_t slot = op_free_.back();
  op_free_.pop_back();
  return slot;
}

void VSwitch::run_op(std::uint32_t slot) {
  PendingOp& rec = op_slab_[slot];
  net::Packet pkt = std::move(rec.pkt);
  const tables::Location dst = rec.dst;
  std::uint64_t* adapter_count = rec.adapter_count;
  const tables::VnicId vid = rec.vid;
  const OpKind kind = rec.kind;
  const auto stage = static_cast<telemetry::Stage>(rec.stage);
  // Free before acting: send_encapped / vm_delivery_ may re-enter and
  // reuse this slot.
  op_free_.push_back(slot);
  record_cpu(telemetry::EventKind::kCpuOpFinish, stage, &pkt, 0, 0);
  if (kind == OpKind::kSend) {
    send_encapped(std::move(pkt), dst);
    return;
  }
  ++vm_deliveries_;
  ++*adapter_count;
  if (telemetry_ != nullptr) {
    telemetry::TraceEvent e;
    e.at = loop_.now();
    e.node = id();
    e.kind = telemetry::EventKind::kVmDeliver;
    e.packet_id = pkt.id;
    e.flow = net::flow_hash(pkt.inner.ft.canonical(), 0);
    e.a = vid;
    telemetry_->record(e);
    // Per-hop-class latency: creation to VM delivery (workloads that stamp
    // created_at only; probes and synthetic packets carry 0).
    if (pkt.created_at > 0) {
      const double us = common::to_micros(loop_.now() - pkt.created_at);
      if (stage == telemetry::Stage::kLocalRx) {
        telemetry_->metrics().observe(lat_local_rx_us_, us);
      } else if (stage == telemetry::Stage::kBeRx) {
        telemetry_->metrics().observe(lat_be_rx_us_, us);
      }
    }
  }
  if (vm_delivery_) vm_delivery_(vid, pkt);
}

void VSwitch::consume_cpu_send(double cycles, net::Packet pkt,
                               const tables::Location& dst,
                               telemetry::Stage stage) {
  const CpuModel::Outcome out = cpu_.consume(cycles, loop_.now());
  if (!out.accepted) {
    inc(Ctr::kDropCpuOverload);
    record_cpu(telemetry::EventKind::kCpuReject, stage, &pkt, cycles, 0);
    return;
  }
  record_cpu(telemetry::EventKind::kCpuOpStart, stage, &pkt, cycles,
             out.done);
  const std::uint32_t slot = alloc_op_slot();
  PendingOp& rec = op_slab_[slot];
  rec.pkt = std::move(pkt);
  rec.dst = dst;
  rec.kind = OpKind::kSend;
  rec.stage = static_cast<std::uint8_t>(stage);
  schedule_op(slot, out.done);
}

void VSwitch::consume_cpu_deliver(double cycles, net::Packet pkt,
                                  tables::VnicId vid,
                                  std::uint64_t* adapter_count,
                                  telemetry::Stage stage) {
  const CpuModel::Outcome out = cpu_.consume(cycles, loop_.now());
  if (!out.accepted) {
    inc(Ctr::kDropCpuOverload);
    record_cpu(telemetry::EventKind::kCpuReject, stage, &pkt, cycles, 0);
    return;
  }
  record_cpu(telemetry::EventKind::kCpuOpStart, stage, &pkt, cycles,
             out.done);
  const std::uint32_t slot = alloc_op_slot();
  PendingOp& rec = op_slab_[slot];
  rec.pkt = std::move(pkt);
  rec.adapter_count = adapter_count;
  rec.vid = vid;
  rec.kind = OpKind::kDeliver;
  rec.stage = static_cast<std::uint8_t>(stage);
  schedule_op(slot, out.done);
}

flow::SessionEntry* VSwitch::get_or_create_session(
    const flow::SessionKey& key) {
  // Single index probe: the pool reservation runs as the creation gate
  // instead of between a separate find and a re-probing create.
  return sessions_.find_or_create_gated(
      key, loop_.now(),
      [](void* ctx) {
        auto* self = static_cast<VSwitch*>(ctx);
        if (!self->session_pool_.reserve(state_entry_bytes(self->config_))) {
          self->inc(Ctr::kDropSessionFull);
          return false;
        }
        return true;
      },
      this);
}

flow::SessionEntry* VSwitch::get_or_create_cache_entry(
    FrontendInstance& fe, const flow::SessionKey& key) {
  struct Ctx {
    VSwitch* self;
    FrontendInstance* fe;
  } ctx{this, &fe};
  return fe.flow_cache.find_or_create_gated(
      key, loop_.now(),
      [](void* c) {
        auto* self = static_cast<Ctx*>(c)->self;
        if (!self->session_pool_.reserve(kFeCacheEntryBytes)) {
          self->inc(Ctr::kDropFeCacheFull);
          return false;
        }
        return true;
      },
      &ctx);
}

const flow::PreActions& VSwitch::ensure_pre_actions(
    flow::SessionEntry& entry, const tables::RuleTableSet& rules,
    const net::FiveTuple& tx_ft, double* cycles, flow::PreActions& fallback) {
  if (entry.pre_actions.has_value() &&
      entry.pre_actions->rule_version == rules.version()) {
    ++fast_hits_;
    *cycles += config_.cost.session_lookup_cycles;
    return *entry.pre_actions;
  }
  // Miss (first packet) or stale (rule tables updated): run the chain.
  ++slow_lookups_;
  if (telemetry_ != nullptr) {
    telemetry::TraceEvent e;
    e.at = loop_.now();
    e.node = id();
    e.kind = telemetry::EventKind::kTableMiss;
    e.flow = net::flow_hash(tx_ft.canonical(), 0);
    e.a = slow_lookups_;
    telemetry_->record(e);
  }
  *cycles += rules.lookup_cycles(config_.cost) +
             config_.cost.session_insert_cycles;
  // Flow-setup cache: identical PreActions to lookup(), one masked-key
  // probe in wall-clock terms. The full chain's simulated cycles are still
  // charged above — the cache models no hardware, it just makes the
  // simulator's connection-setup path cheap to execute.
  fallback = rules.lookup_cached(tx_ft);
  const bool had_cache = entry.pre_actions.has_value();
  if (had_cache || session_pool_.reserve(kPreActionCacheBytes)) {
    entry.pre_actions = fallback;
    return *entry.pre_actions;
  }
  inc(Ctr::kCacheInsertFail);
  return fallback;
}

std::optional<tables::Location> VSwitch::resolve_dst(
    const tables::OverlayAddr& addr, const net::FiveTuple& ft) {
  const tables::VnicServerMap::Entry* entry =
      learned_map_.resolve(addr, loop_.now());
  if (entry == nullptr || entry->placement.locations.empty()) {
    return std::nullopt;
  }
  const auto& locs = entry->placement.locations;
  if (locs.size() == 1) return locs[0];
  // Offloaded destination: the FE-selection policy picks across its FEs
  // (§3.2.3 5-tuple hashing under the default StaticHashPolicy).
  const net::FiveTuple hash_ft =
      config_.session_consistent_fe_hash ? ft.canonical() : ft;
  return policy::pick_location(*fe_policy_, hash_ft, locs, fe_hash_seed_,
                               fe_weights_);
}

void VSwitch::send_encapped(net::Packet pkt, const tables::Location& dst) {
  pkt.encap(underlay_ip(), mac(), dst.ip, dst.mac);
  network_.send(id(), dst.ip, std::move(pkt));
}

void VSwitch::mirror_copy(const net::Packet& pkt,
                          const flow::DirPreAction& pre) {
  if (!pre.mirror || !pre.mirror_target.valid()) return;
  net::Packet copy = pkt;
  copy.overlay.reset();
  copy.carrier.reset();
  ++mirrored_;
  send_encapped(std::move(copy), tables::Location{pre.mirror_target.ip,
                                                  pre.mirror_target.mac});
}

void VSwitch::release_session_entry(const flow::SessionEntry& entry) {
  session_pool_.release(state_entry_bytes(config_));
  if (entry.pre_actions.has_value()) {
    session_pool_.release(kPreActionCacheBytes);
  }
}

void VSwitch::start_aging() {
  if (aging_started_) return;
  aging_started_ = true;
  loop_.schedule_periodic(config_.aging_period, [this]() {
    sessions_.age_out(loop_.now(),
                      [this](const flow::SessionKey&,
                             const flow::SessionEntry& e) {
                        release_session_entry(e);
                      });
    for (auto& [id, fe] : frontends_) {
      fe.flow_cache.age_out(loop_.now(),
                            [this](const flow::SessionKey&,
                                   const flow::SessionEntry&) {
                              session_pool_.release(kFeCacheEntryBytes);
                            });
    }
  });
}

// ------------------------------------------------------------- TX entry

void VSwitch::from_vm(tables::VnicId vnic_id, net::Packet pkt) {
  Vnic* v = vnic(vnic_id);
  if (v == nullptr) {
    inc(Ctr::kDropNoVnic);
    return;
  }
  // Stamp at the VM edge so the id covers every hop of the packet's life.
  if (telemetry_ != nullptr) telemetry_->stamp(pkt);
  pkt.vpc_id = v->addr().vpc_id;
  switch (v->mode()) {
    case VnicMode::kLocal:
    case VnicMode::kOffloadDualRunning:
    case VnicMode::kFallbackDualRunning:
      // Tables are local in all dual-running shapes: process locally.
      local_tx(*v, std::move(pkt));
      break;
    case VnicMode::kOffloaded:
      be_tx(*v, std::move(pkt));
      break;
  }
}

void VSwitch::local_tx(Vnic& v, net::Packet pkt) {
  // Key first: the index-cell prefetch overlaps the cost-model arithmetic
  // below (the TX-side analogue of the RX burst's two-step prefetch).
  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  sessions_.prefetch_index(key);
  double cycles = config_.cost.parse_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  flow::PreActions scratch;
  const flow::PreActions& pre =
      ensure_pre_actions(*entry, *v.rules(), pkt.inner.ft, &cycles, scratch);

  entry->state.observe(flow::Direction::kTx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);  // FIN/RST may have shrunk the aging deadline
  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kTx, pre, entry->state);
  if (verdict == flow::Verdict::kDrop) {
    inc(Ctr::kDropAcl);
    local_cycles_ += cycles;
    consume_cpu_noop(cycles, telemetry::Stage::kLocalTx);
    return;
  }

  // QoS pre-action: VM/flow-level rate limiting enforced at the single
  // node that sees every packet of the flow (no distributed rate-limiting
  // coordination needed, §2.3.3).
  if (!entry->qos_admit(pre.tx.rate_limit_kbps, pkt.wire_size() * 8,
                        loop_.now())) {
    inc(Ctr::kDropQos);
    consume_cpu_noop(cycles, telemetry::Stage::kLocalTx);
    return;
  }

  // Traffic mirroring: duplicate toward the collector before any rewrite.
  if (pre.tx.mirror) {
    cycles += config_.cost.mirror_cycles;
    mirror_copy(pkt, pre.tx);
  }

  // NAT rewrite recipe from the pre-actions.
  if (pre.tx.nat_enabled) {
    pkt.inner.ft.src_ip = pre.tx.nat_ip;
    pkt.inner.ft.src_port = pre.tx.nat_port;
  }

  cycles += config_.cost.encap_cycles;
  // Stateful decap (§5.2): responses return to the recorded LB address.
  std::optional<tables::Location> dst;
  if (entry->state.decap_src_ip.value() != 0) {
    dst = tables::Location{entry->state.decap_src_ip, net::MacAddr(0)};
  } else if (pre.tx.next_hop.valid()) {
    dst = tables::Location{pre.tx.next_hop.ip, pre.tx.next_hop.mac};
  } else {
    dst = resolve_dst(tables::OverlayAddr{pkt.vpc_id, pkt.inner.ft.dst_ip},
                      pkt.inner.ft);
  }
  if (!dst) {
    inc(Ctr::kDropNoRoute);
    local_cycles_ += cycles;
    consume_cpu_noop(cycles, telemetry::Stage::kLocalTx);
    return;
  }
  local_cycles_ += cycles;
  consume_cpu_send(cycles, std::move(pkt), *dst, telemetry::Stage::kLocalTx);
}

void VSwitch::be_tx(Vnic& v, net::Packet pkt) {
  if (v.fe_locations().empty()) {
    inc(Ctr::kDropNoFrontend);
    return;
  }
  double cycles = (config_.cost.parse_cycles +
                   config_.cost.state_update_cycles +
                   config_.cost.carrier_codec_cycles +
                   config_.cost.encap_cycles +
                   config_.cost.per_byte_cycles *
                       static_cast<double>(pkt.inner.wire_size())) *
                  config_.cost.be_hw_accel_factor;  // §7.3 BE acceleration
  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  // §5.1 TX workflow: query/initialize the state, then ship a snapshot of
  // it to the FE inside the packet.
  entry->state.observe(flow::Direction::kTx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);

  net::CarrierHeader& carrier = pkt.carrier.emplace();
  add_vnic_id_tlv(carrier, v.id());
  entry->state.serialize_snapshot_into(
      carrier.add_uninit(net::CarrierTlvType::kStateSnapshot,
                         flow::SessionState::kSnapshotWireSize));

  // Flow-level (not packet-level) load balancing across FEs (§3.2.3),
  // unless the flow was pinned to a dedicated FE (§7.5 elephant isolation).
  const auto& fes = v.fe_locations();
  const net::FiveTuple hash_ft = config_.session_consistent_fe_hash
                                     ? pkt.inner.ft.canonical()
                                     : pkt.inner.ft;
  tables::Location fe = policy::pick_location(*fe_policy_, hash_ft, fes,
                                              fe_hash_seed_, fe_weights_);
  if (auto pit = pinned_flows_.find(key); pit != pinned_flows_.end()) {
    fe = pit->second;
  }
  if (telemetry_ != nullptr) {
    telemetry::TraceEvent e;
    e.at = loop_.now();
    e.node = id();
    e.kind = telemetry::EventKind::kBeFeRedirect;
    e.packet_id = pkt.id;
    e.flow = net::flow_hash(pkt.inner.ft.canonical(), 0);
    e.a = fe.ip.value();
    telemetry_->record(e);
  }
  local_cycles_ += cycles;
  consume_cpu_send(cycles, std::move(pkt), fe, telemetry::Stage::kBeTx);
}

// ------------------------------------------------------------ RX entry

void VSwitch::receive(net::Packet pkt) {
  if (!pkt.overlay) {
    if (pkt.inner.ft.dst_port == kHealthProbePort) {
      health_probe_reply(pkt);
    } else if (pkt.inner.ft.dst_port == kLinkProbeReplyPort &&
               link_probe_reply_) {
      link_probe_reply_(pkt);
    } else {
      inc(Ctr::kDropUnroutable);
    }
    return;
  }
  if (pkt.overlay->dst_ip != underlay_ip()) {
    inc(Ctr::kDropMisdelivered);
    return;
  }

  if (pkt.carrier) {
    const auto vid = pkt.carrier->find(net::CarrierTlvType::kVnicId);
    if (!vid) {
      inc(Ctr::kDropBadCarrier);
      return;
    }
    const tables::VnicId vnic_id = decode_vnic_id(*vid);
    if (pkt.carrier->flags.is_notify) {
      if (Vnic* v = vnic(vnic_id)) be_notify(*v, pkt);
      else inc(Ctr::kDropNoVnic);
      return;
    }
    if (pkt.carrier->has(net::CarrierTlvType::kStateSnapshot)) {
      if (FrontendInstance* fe = frontend(vnic_id)) fe_tx(*fe, std::move(pkt));
      else inc(Ctr::kDropNoFrontend);
      return;
    }
    if (pkt.carrier->has(net::CarrierTlvType::kPreActions)) {
      if (Vnic* v = vnic(vnic_id)) be_rx(*v, std::move(pkt));
      else inc(Ctr::kDropNoVnic);
      return;
    }
    inc(Ctr::kDropBadCarrier);
    return;
  }

  // Plain overlay data packet: one lookup resolves FE-vs-hosted-vNIC.
  const tables::OverlayAddr dst{pkt.vpc_id, pkt.inner.ft.dst_ip};
  const auto it = dispatch_by_addr_.find(dst);
  if (it == dispatch_by_addr_.end()) {
    inc(Ctr::kDropNoVnic);
    return;
  }
  if (it->second.fe != nullptr) {
    fe_rx(*it->second.fe, std::move(pkt));
    return;
  }
  if (Vnic* v = it->second.vnic; v != nullptr) {
    if (v->has_local_tables()) {
      // Local mode or a dual-running stage: retained tables serve senders
      // that have not learned the new placement yet (gray flow, Fig 7).
      local_rx(*v, std::move(pkt));
    } else {
      // Final offloaded stage: this packet followed a stale route; it can
      // no longer be processed here (§4.1) — rely on retransmission.
      inc(Ctr::kDropStaleRoute);
    }
    return;
  }
  inc(Ctr::kDropNoVnic);
}

void VSwitch::receive_burst(net::Packet* pkts, std::size_t n) {
  // Two-step software prefetch of the session-table probe path across the
  // burst: index cells first, then the keyed slots each cell points at,
  // then process. Wall-clock only — every packet still goes through the
  // same receive() in arrival order, so results are identical to per-packet
  // delivery. (FE-destined packets probe a per-frontend flow cache instead;
  // warming the unified store for them is merely a wasted prefetch.)
  std::uint64_t hashes[sim::Network::kRxBurst];
  const std::size_t m = n < sim::Network::kRxBurst ? n : sim::Network::kRxBurst;
  for (std::size_t i = 0; i < m; ++i) {
    hashes[i] = sessions_.prefetch_index(
        flow::SessionKey::from_packet(pkts[i].vpc_id, pkts[i].inner.ft));
  }
  for (std::size_t i = 0; i < m; ++i) sessions_.prefetch_entry(hashes[i]);
  for (std::size_t i = 0; i < n; ++i) receive(std::move(pkts[i]));
}

void VSwitch::local_rx(Vnic& v, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles + config_.cost.decap_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());
  const net::Ipv4Addr overlay_src = pkt.overlay->src_ip;
  pkt.decap();

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  flow::PreActions scratch;
  // RX packets are oriented responder→initiator from the vNIC's viewpoint;
  // the rule chain is keyed by the TX-oriented tuple.
  const flow::PreActions& pre = ensure_pre_actions(
      *entry, *v.rules(), pkt.inner.ft.reversed(), &cycles, scratch);

  entry->state.observe(flow::Direction::kRx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);
  entry->state.stats_mode = pre.rx.stats_mode;
  if (v.stateful_decap() && entry->state.decap_src_ip.value() == 0) {
    entry->state.decap_src_ip = overlay_src;
  }

  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kRx, pre, entry->state);
  if (verdict == flow::Verdict::kDrop) {
    inc(Ctr::kDropAcl);
    local_cycles_ += cycles;
    consume_cpu_noop(cycles, telemetry::Stage::kLocalRx);
    return;
  }
  // Traffic mirroring for the RX direction, at the pre-action evaluation
  // point (locally here; at the FE when offloaded).
  if (pre.rx.mirror) {
    cycles += config_.cost.mirror_cycles;
    mirror_copy(pkt, pre.rx);
  }
  local_cycles_ += cycles;
  consume_cpu_deliver(cycles, std::move(pkt), v.id(), v.delivery_counter(),
                      telemetry::Stage::kLocalRx);
}

void VSwitch::be_rx(Vnic& v, net::Packet pkt) {
  double cycles = (config_.cost.parse_cycles + config_.cost.decap_cycles +
                   config_.cost.carrier_codec_cycles +
                   config_.cost.state_update_cycles +
                   config_.cost.per_byte_cycles *
                       static_cast<double>(pkt.inner.wire_size())) *
                  config_.cost.be_hw_accel_factor;  // §7.3 BE acceleration

  const auto pre_tlv = pkt.carrier->find(net::CarrierTlvType::kPreActions);
  auto pre = flow::PreActions::parse(*pre_tlv);
  if (!pre.ok()) {
    inc(Ctr::kDropBadCarrier);
    return;
  }
  const auto decap_tlv = pkt.carrier->find(net::CarrierTlvType::kDecapInfo);

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_session(key);
  if (entry == nullptr) return;

  // §5.1 RX workflow: initialize/refresh state, adopt the rule-table-derived
  // state carried in the packet (§3.2.2: the FE does not verify, it informs).
  entry->state.observe(flow::Direction::kRx, pkt.inner.tcp_flags,
                       pkt.inner.ft.proto == net::IpProto::kTcp,
                       pkt.inner.wire_size(), loop_.now());
  sessions_.touch(entry);
  entry->state.stats_mode = pre.value().rx.stats_mode;
  if (decap_tlv.has_value() && v.stateful_decap() &&
      entry->state.decap_src_ip.value() == 0) {
    net::ByteReader r(*decap_tlv);
    entry->state.decap_src_ip = net::Ipv4Addr(r.u32());
  }

  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kRx, pre.value(), entry->state);
  if (verdict == flow::Verdict::kDrop) {
    inc(Ctr::kDropAcl);
    local_cycles_ += cycles;
    consume_cpu_noop(cycles, telemetry::Stage::kBeRx);
    return;
  }
  local_cycles_ += cycles;
  pkt.decap();
  consume_cpu_deliver(cycles, std::move(pkt), v.id(), v.delivery_counter(),
                      telemetry::Stage::kBeRx);
}

void VSwitch::be_notify(Vnic& v, const net::Packet& pkt) {
  (void)v;
  double cycles = config_.cost.parse_cycles +
                  config_.cost.carrier_codec_cycles +
                  config_.cost.state_update_cycles;
  const auto notify = pkt.carrier->find(net::CarrierTlvType::kNotify);
  if (!notify || notify->empty()) {
    inc(Ctr::kDropBadCarrier);
    return;
  }
  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  if (flow::SessionEntry* entry = sessions_.find(key)) {
    entry->state.stats_mode = static_cast<flow::StatsMode>(notify->front());
  }
  inc(Ctr::kNotifyReceived);
  local_cycles_ += cycles;
  consume_cpu_noop(cycles, telemetry::Stage::kBeNotify);
}

void VSwitch::fe_tx(FrontendInstance& fe, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles + config_.cost.decap_cycles +
                  config_.cost.carrier_codec_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());

  const auto snap_tlv = pkt.carrier->find(net::CarrierTlvType::kStateSnapshot);
  auto snapshot = flow::SessionState::parse_snapshot(*snap_tlv);
  if (!snapshot.ok()) {
    inc(Ctr::kDropBadCarrier);
    return;
  }

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_cache_entry(fe, key);
  flow::PreActions scratch;
  const std::uint64_t lookups_before = slow_lookups_;
  const flow::PreActions& pre =
      (entry != nullptr)
          ? ensure_pre_actions(*entry, fe.rules, pkt.inner.ft, &cycles, scratch)
          : (scratch = fe.rules.lookup_cached(pkt.inner.ft),
             cycles += fe.rules.lookup_cycles(config_.cost), scratch);
  const bool chain_ran = slow_lookups_ != lookups_before || entry == nullptr;
  if (!chain_ran) cycles *= config_.cost.fe_cache_hit_accel_factor;

  // The FE executes the same finalization code as before Nezha, with the
  // state arriving in the packet instead of a local table (Fig 5).
  const flow::Verdict verdict =
      nf::finalize_action(flow::Direction::kTx, pre, snapshot.value());

  // Notify the BE when the rule-table-derived state differs from what the
  // packet carried (§3.2.2) — only on chain executions, which are rare.
  if (chain_ran && pre.tx.stats_mode != snapshot.value().stats_mode) {
    net::Packet notify_pkt = pkt;  // same inner flow identity
    notify_pkt.inner.payload_len = 0;
    net::CarrierHeader& carrier = notify_pkt.carrier.emplace();
    carrier.flags.is_notify = true;
    add_vnic_id_tlv(carrier, fe.vnic);
    carrier.add(net::CarrierTlvType::kNotify,
                {static_cast<std::uint8_t>(pre.tx.stats_mode)});
    notify_pkt.overlay.reset();
    ++notify_sent_;
    cycles += config_.cost.carrier_codec_cycles;
    consume_cpu_send(config_.cost.carrier_codec_cycles, std::move(notify_pkt),
                     fe.be_location, telemetry::Stage::kFeTx);
  }

  if (verdict == flow::Verdict::kDrop) {
    inc(Ctr::kDropAcl);
    fe_cycles_ += cycles;
    consume_cpu_noop(cycles, telemetry::Stage::kFeTx);
    return;
  }

  if (entry != nullptr &&
      !entry->qos_admit(pre.tx.rate_limit_kbps, pkt.wire_size() * 8,
                        loop_.now())) {
    inc(Ctr::kDropQos);
    consume_cpu_noop(cycles, telemetry::Stage::kFeTx);
    return;
  }

  if (pre.tx.mirror) {
    cycles += config_.cost.mirror_cycles;
    net::Packet unwrapped = pkt;
    unwrapped.decap();
    mirror_copy(unwrapped, pre.tx);
  }

  if (pre.tx.nat_enabled) {
    pkt.inner.ft.src_ip = pre.tx.nat_ip;
    pkt.inner.ft.src_port = pre.tx.nat_port;
  }

  cycles += config_.cost.encap_cycles;
  std::optional<tables::Location> dst;
  if (snapshot.value().decap_src_ip.value() != 0) {
    dst = tables::Location{snapshot.value().decap_src_ip, net::MacAddr(0)};
  } else if (pre.tx.next_hop.valid()) {
    dst = tables::Location{pre.tx.next_hop.ip, pre.tx.next_hop.mac};
  } else {
    dst = resolve_dst(tables::OverlayAddr{pkt.vpc_id, pkt.inner.ft.dst_ip},
                      pkt.inner.ft);
  }
  if (!dst) {
    inc(Ctr::kDropNoRoute);
    fe_cycles_ += cycles;
    consume_cpu_noop(cycles, telemetry::Stage::kFeTx);
    return;
  }
  fe_cycles_ += cycles;
  pkt.decap();  // strip the BE's overlay + carrier; re-encap toward the dst
  consume_cpu_send(cycles, std::move(pkt), *dst, telemetry::Stage::kFeTx);
}

void VSwitch::fe_rx(FrontendInstance& fe, net::Packet pkt) {
  double cycles = config_.cost.parse_cycles + config_.cost.decap_cycles +
                  config_.cost.carrier_codec_cycles +
                  config_.cost.encap_cycles +
                  config_.cost.per_byte_cycles *
                      static_cast<double>(pkt.inner.wire_size());

  // Capture information the BE will lose once we rewrite the outer header
  // (§3.2.2 "rule table not involved"): the overlay source IP.
  const net::Ipv4Addr overlay_src = pkt.overlay->src_ip;

  const flow::SessionKey key =
      flow::SessionKey::from_packet(pkt.vpc_id, pkt.inner.ft);
  flow::SessionEntry* entry = get_or_create_cache_entry(fe, key);
  flow::PreActions scratch;
  const std::uint64_t lookups_before = slow_lookups_;
  const flow::PreActions& pre =
      (entry != nullptr)
          ? ensure_pre_actions(*entry, fe.rules, pkt.inner.ft.reversed(),
                               &cycles, scratch)
          : (scratch = fe.rules.lookup_cached(pkt.inner.ft.reversed()),
             cycles += fe.rules.lookup_cycles(config_.cost), scratch);
  const bool chain_ran = slow_lookups_ != lookups_before || entry == nullptr;
  if (!chain_ran) cycles *= config_.cost.fe_cache_hit_accel_factor;

  // Traffic mirroring for the RX direction happens where the pre-actions
  // are evaluated: at the FE.
  if (pre.rx.mirror) {
    cycles += config_.cost.mirror_cycles;
    net::Packet unwrapped = pkt;
    unwrapped.decap();
    mirror_copy(unwrapped, pre.rx);
  }

  // Annotate the packet with the pre-actions and forward to the BE, which
  // holds the state needed for the final decision (blue flow, Fig 5).
  pkt.decap();
  net::CarrierHeader& carrier = pkt.carrier.emplace();
  carrier.flags.from_frontend = true;
  add_vnic_id_tlv(carrier, fe.vnic);
  pre.serialize_into(carrier.add_uninit(net::CarrierTlvType::kPreActions,
                                        flow::PreActions::kWireSize));
  if (fe.stateful_decap) {
    net::FixedWriter w(
        carrier.add_uninit(net::CarrierTlvType::kDecapInfo, 4));
    w.u32(overlay_src.value());
  }

  fe_cycles_ += cycles;
  consume_cpu_send(cycles, std::move(pkt), fe.be_location,
                   telemetry::Stage::kFeRx);
}

void VSwitch::health_probe_reply(const net::Packet& pkt) {
  // Flow-direct rule: probes bypass the normal pipeline (§4.4).
  net::Packet reply = net::make_udp_packet(pkt.inner.ft.reversed(), 0, 0);
  reply.id = pkt.id;  // echo the probe id so the monitor can match it
  inc(Ctr::kProbeReplied);
  consume_cpu(100.0, telemetry::Stage::kProbe,
              [this, reply = std::move(reply)]() mutable {
    network_.send(id(), reply.inner.ft.dst_ip, std::move(reply));
  });
}

}  // namespace nezha::vswitch
