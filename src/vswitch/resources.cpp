#include "src/vswitch/resources.h"

namespace nezha::vswitch {

CpuModel::CpuModel(CpuConfig config)
    : config_(config),
      rate_(static_cast<double>(config.cores) * config.hz_per_core) {}

CpuModel::Outcome CpuModel::consume(double cycles, common::TimePoint now) {
  Outcome out;
  const auto service = static_cast<common::Duration>(
      cycles / rate_ * static_cast<double>(common::kSecond));

  if (busy_until_ <= now) {
    // Idle gap [busy_until_, now): close the previous busy run.
    cumulative_busy_ += busy_until_ - frontier_;
    frontier_ = now;
    busy_until_ = now;
  }
  const common::Duration queue_delay = busy_until_ - now;
  if (queue_delay > config_.max_queue_delay) {
    ++rejected_;
    return out;
  }
  busy_until_ += service;
  ++accepted_;
  out.accepted = true;
  out.done = busy_until_;
  out.queue_delay = queue_delay;
  return out;
}

common::Duration CpuModel::busy_integral(common::TimePoint now) const {
  common::Duration b = cumulative_busy_;
  const common::TimePoint run_end = busy_until_ < now ? busy_until_ : now;
  if (run_end > frontier_) b += run_end - frontier_;
  return b;
}

double UtilizationSampler::sample(const CpuModel& cpu, common::TimePoint now) {
  const common::Duration busy = cpu.busy_integral(now);
  double util = 0.0;
  if (now > last_t_) {
    util = static_cast<double>(busy - last_busy_) /
           static_cast<double>(now - last_t_);
  }
  last_t_ = now;
  last_busy_ = busy;
  return util;
}

}  // namespace nezha::vswitch
