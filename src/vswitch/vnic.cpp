#include "src/vswitch/vnic.h"

namespace nezha::vswitch {

std::string to_string(VnicMode mode) {
  switch (mode) {
    case VnicMode::kLocal: return "LOCAL";
    case VnicMode::kOffloadDualRunning: return "OFFLOAD_DUAL_RUNNING";
    case VnicMode::kOffloaded: return "OFFLOADED";
    case VnicMode::kFallbackDualRunning: return "FALLBACK_DUAL_RUNNING";
  }
  return "?";
}

}  // namespace nezha::vswitch
