// The SmartNIC vSwitch dataplane.
//
// One class implements all three roles a production vSwitch plays under
// Nezha (the paper stresses Nezha changes <5% of vSwitch code — the roles
// share the same fast/slow path machinery):
//
//  * LOCAL:   traditional processing (Fig 1) — slow-path rule chain on
//             cache miss, fast-path session-table hits, for hosted vNICs.
//  * BE:      for offloaded hosted vNICs — keeps ONLY session states; TX
//             packets pick up a state snapshot and are forwarded to an FE
//             chosen by 5-tuple hash; RX packets arrive from FEs carrying
//             pre-actions and are finalized locally (Fig 5).
//  * FE:      hosts frontend instances for other servers' vNICs — stateless
//             rule tables + cached flows; finalizes TX packets using the
//             carried state; annotates RX packets with pre-actions and
//             forwards them to the BE; emits notify packets when a rule
//             lookup contradicts the carried state (§3.2.2).
//
// CPU costs are charged per the cost model; memory for rule tables, session
// states and flow caches is charged to the two pools, so every bottleneck
// in §2.2.2 is observable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/flow/session_table.h"
#include "src/policy/fe_policy.h"
#include "src/net/packet.h"
#include "src/sim/event_loop.h"
#include "src/sim/network.h"
#include "src/sim/node.h"
#include "src/tables/cost_model.h"
#include "src/tables/rule_set.h"
#include "src/tables/vnic_server_map.h"
#include "src/telemetry/trace_event.h"
#include "src/vswitch/counters.h"
#include "src/vswitch/learned_map.h"
#include "src/vswitch/resources.h"
#include "src/vswitch/vnic.h"

namespace nezha::telemetry {
class Hub;
}

namespace nezha::vswitch {

/// Health probes (§4.4) are flow-directed straight to the vSwitch VF by
/// destination port, bypassing the other hypervisors on the SmartNIC.
inline constexpr std::uint16_t kHealthProbePort = 54321;
/// Replies to FE-BE mutual link probes (§C.1) arrive on this port; the
/// receiving vSwitch hands them to the registered link prober instead of
/// the data path.
inline constexpr std::uint16_t kLinkProbeReplyPort = 54322;

struct VSwitchConfig {
  CpuConfig cpu;
  /// Slow-path memory for vNIC rule tables (limits #vNICs).
  std::size_t rule_memory_bytes = 2ull * 1024 * 1024 * 1024;
  /// Fast-path memory for the session table / flow caches / BE states
  /// (limits #concurrent flows).
  std::size_t session_memory_bytes = 1ull * 1024 * 1024 * 1024;
  tables::CostModel cost;
  common::Duration learning_interval = common::milliseconds(200);
  flow::SessionTableConfig session_config;  // TTLs; capacity comes from pools
  /// Period of the background aging sweep.
  common::Duration aging_period = common::seconds(1);
  /// FE selection hash. Nezha's state-locality means bidirectional flows
  /// CAN go to different FEs (§3.2.3) — but doing so duplicates the rule
  /// chain execution and the cached flow per direction. The default hashes
  /// the canonical (direction-insensitive) tuple so one session maps to one
  /// FE, maximizing cache friendliness; set false to split directions
  /// (the ablation bench quantifies the cost).
  bool session_consistent_fe_hash = true;
  /// §7.1 variable-length states: most sessions use 5–8B of the fixed 64B
  /// state allocation. When enabled, session entries reserve an
  /// average-sized variable allocation instead of the fixed one, raising
  /// #concurrent-flows capacity by up to 64B/8B = 8x.
  bool variable_length_states = false;
  std::size_t variable_state_avg_bytes = 8;
  /// CPU completion coalescing (DESIGN.md §11): when > 0, per-packet CPU
  /// completions are queued and drained in batches at multiples of this
  /// window (up to kCpuBurst per drain event) instead of one event each.
  /// Changes op timing (completions land at the boundary at or after their
  /// exact done time), so default 0 keeps unit-test timing exact;
  /// throughput benches opt in.
  common::Duration cpu_burst_window = 0;
};

/// A frontend instance: one offloaded vNIC's stateless tables hosted on a
/// remote (idle) vSwitch.
struct FrontendInstance {
  tables::VnicId vnic = 0;
  tables::OverlayAddr addr;
  tables::RuleTableSet rules;
  flow::SessionTable flow_cache;
  tables::Location be_location;
  bool stateful_decap = false;
};

class VSwitch : public sim::Node {
 public:
  VSwitch(sim::NodeId id, std::string name, net::Ipv4Addr underlay_ip,
          sim::EventLoop& loop, sim::Network& network,
          const tables::VnicServerMap& gateway_map,
          VSwitchConfig config = {});

  const VSwitchConfig& config() const { return config_; }
  tables::Location location() const {
    return tables::Location{underlay_ip(), mac()};
  }
  /// The event loop this vSwitch runs on — on a sharded engine, its owning
  /// shard's loop. Deferred controller work that mutates vSwitch state must
  /// be scheduled here, never on the controller's own loop: a continuation
  /// on the wrong loop would race with the owning shard's packet processing
  /// once the engine goes multi-threaded.
  sim::EventLoop& loop() { return loop_; }

  // ---------- vNIC lifecycle ----------
  /// Adds a hosted vNIC; fails when slow-path memory cannot hold its rule
  /// tables (#vNICs bottleneck).
  common::Status add_vnic(const VnicConfig& config, bool stateful_decap = false);
  void remove_vnic(tables::VnicId id);
  Vnic* vnic(tables::VnicId id);
  const Vnic* find_vnic(tables::VnicId id) const;
  std::size_t vnic_count() const { return vnics_.size(); }

  // ---------- VM-side I/O ----------
  using VmDeliveryFn =
      std::function<void(tables::VnicId, const net::Packet&)>;
  void set_vm_delivery(VmDeliveryFn fn) { vm_delivery_ = std::move(fn); }

  /// TX entry point: the hosted VM hands the vSwitch a packet.
  void from_vm(tables::VnicId vnic_id, net::Packet pkt);

  // ---------- network side ----------
  void receive(net::Packet pkt) override;
  /// Burst delivery: software-prefetches the session-table probe path for
  /// every packet in the burst, then processes them in arrival order —
  /// results identical to per-packet receive().
  void receive_burst(net::Packet* pkts, std::size_t n) override;

  // ---------- Nezha configuration (driven by core::Controller) ----------
  /// Installs an FE instance for a remote vNIC, cloning the given rule
  /// tables; fails when rule memory is exhausted.
  common::Status install_frontend(const VnicConfig& vnic_config,
                                  const tables::RuleTableSet& rules,
                                  tables::Location be_location,
                                  bool stateful_decap);
  void remove_frontend(tables::VnicId id);
  FrontendInstance* frontend(tables::VnicId id);
  std::size_t frontend_count() const { return frontends_.size(); }

  /// BE transitions (§4.2).
  common::Status begin_offload(tables::VnicId id,
                               std::vector<tables::Location> fes,
                               common::TimePoint dual_running_until);
  void finalize_offload(tables::VnicId id);
  common::Status begin_fallback(tables::VnicId id,
                                common::TimePoint dual_running_until);
  void finalize_fallback(tables::VnicId id);
  /// Scale-out/-in and failover adjust the FE set (§4.3/§4.4).
  void update_fe_locations(tables::VnicId id,
                           std::vector<tables::Location> fes);

  /// Invalidate cached flows after a rule-table change (§3.2.2).
  void invalidate_cached_flows(tables::VnicId id);

  /// §7.5 elephant-flow isolation: pins one flow of an offloaded vNIC to a
  /// dedicated FE, overriding the hash. Applies to the TX path (the BE's
  /// choice); clear with unpin_flow.
  void pin_flow(tables::VnicId id, const net::FiveTuple& ft,
                tables::Location fe);
  void unpin_flow(tables::VnicId id, const net::FiveTuple& ft);

  /// §7.5 hash reseeding: changes the seed of the 5-tuple FE-selection
  /// hash (pushed fleet-wide by the controller so both directions keep
  /// mapping to one FE). Ongoing flows rehash — at worst one extra rule
  /// lookup per flow at its new FE.
  void set_fe_hash_seed(std::uint64_t seed) { fe_hash_seed_ = seed; }
  std::uint64_t fe_hash_seed() const { return fe_hash_seed_; }

  /// FE-selection policy (DESIGN.md §14) used by both hash sites (sender
  /// resolve_dst and BE be_tx). Pushed fleet-wide by the controller — like
  /// the hash seed, both directions must agree for session-consistent FE
  /// mapping. Null resets to the default static hash.
  void set_fe_policy(const policy::FeSelectionPolicy* p) {
    fe_policy_ = p != nullptr
                     ? p
                     : &policy::policy_for(policy::PolicyKind::kStaticHash);
  }
  const policy::FeSelectionPolicy& fe_policy() const { return *fe_policy_; }
  /// Fleet-wide FE weight book for load-aware policies (controller-pushed;
  /// copied, so the control plane can keep mutating its own copy).
  void set_fe_weights(const policy::FeWeightBook& book) { fe_weights_ = book; }
  const policy::FeWeightBook& fe_weights() const { return fe_weights_; }

  /// §C.1 mutual FE-BE link probing: replies to probes sent by this node's
  /// prober land here.
  using LinkProbeReplyFn = std::function<void(const net::Packet&)>;
  void set_link_probe_reply_handler(LinkProbeReplyFn fn) {
    link_probe_reply_ = std::move(fn);
  }

  // ---------- telemetry ----------
  /// Connects the flight recorder / metrics plane (null = off). Registers
  /// the shared per-hop-class latency histograms on first attach.
  void set_telemetry(telemetry::Hub* hub);

  CpuModel& cpu() { return cpu_; }
  const CpuModel& cpu() const { return cpu_; }
  MemoryPool& rule_memory() { return rule_pool_; }
  const MemoryPool& rule_memory() const { return rule_pool_; }
  MemoryPool& session_memory() { return session_pool_; }
  const MemoryPool& session_memory() const { return session_pool_; }
  common::Counter& counters() { return counters_; }
  const common::Counter& counters() const { return counters_; }
  std::uint64_t slow_path_lookups() const { return slow_lookups_; }
  std::uint64_t fast_path_hits() const { return fast_hits_; }
  std::uint64_t notify_sent() const { return notify_sent_; }
  std::uint64_t vm_deliveries() const { return vm_deliveries_; }
  std::uint64_t mirrored() const { return mirrored_; }

  /// §7.4 child vNICs: deliveries are counted against the I/O adapter they
  /// share — the parent's for a child vNIC, its own otherwise. The guest
  /// demultiplexes children by tag on that one adapter.
  std::uint64_t adapter_deliveries(tables::VnicId adapter) const {
    auto it = adapter_deliveries_.find(adapter);
    return it == adapter_deliveries_.end() ? 0 : it->second;
  }

  /// CPU cycles attributed to hosting FEs for remote vNICs vs serving local
  /// vNICs — the discriminator in Fig 8's scale-out vs scale-in decision.
  double fe_cycles() const { return fe_cycles_; }
  double local_cycles() const { return local_cycles_; }
  /// Resets the attribution window (called by the controller each
  /// monitoring period).
  void reset_cycle_attribution() { fe_cycles_ = local_cycles_ = 0.0; }

  /// The unified session store. State always lives here in one copy (that
  /// IS Nezha's BE store); pre-actions are cached per entry only for vNICs
  /// processed locally, so offloaded vNICs' entries are smaller — the
  /// memory margin behind the #concurrent-flows gain.
  flow::SessionTable& sessions() { return sessions_; }
  const flow::SessionTable& sessions() const { return sessions_; }

  /// Starts the periodic aging sweep (optional; benches that only measure
  /// steady-state throughput can skip it).
  void start_aging();

  /// Deterministic-order iteration over hosted vNICs / FE instances for the
  /// invariant checker (sorted by id; the underlying maps are unordered).
  template <typename Fn>
  void for_each_vnic(Fn&& fn) const {
    for (tables::VnicId id : sorted_keys(vnics_)) fn(vnics_.at(id));
  }
  template <typename Fn>
  void for_each_frontend(Fn&& fn) const {
    for (tables::VnicId id : sorted_keys(frontends_)) fn(frontends_.at(id));
  }

 private:
  template <typename Map>
  static std::vector<tables::VnicId> sorted_keys(const Map& map) {
    std::vector<tables::VnicId> keys;
    keys.reserve(map.size());
    for (const auto& [id, v] : map) keys.push_back(id);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  // --- datapath stages ---
  void local_tx(Vnic& v, net::Packet pkt);
  void be_tx(Vnic& v, net::Packet pkt);
  void local_rx(Vnic& v, net::Packet pkt);
  void be_rx(Vnic& v, net::Packet pkt);
  void be_notify(Vnic& v, const net::Packet& pkt);
  void fe_tx(FrontendInstance& fe, net::Packet pkt);
  void fe_rx(FrontendInstance& fe, net::Packet pkt);
  void health_probe_reply(const net::Packet& pkt);

  // --- helpers ---
  void inc(Ctr c) { counters_.inc(static_cast<std::size_t>(c)); }

  /// Charges `cycles`; on acceptance schedules `then` at completion and
  /// returns true, otherwise counts an overload drop. Cold paths only —
  /// capturing a Packet in `then` heap-allocates; the datapath uses the
  /// pooled variants below.
  bool consume_cpu(double cycles, telemetry::Stage stage,
                   std::function<void()> then);

  /// Datapath variants: the deferred work lives in a pooled PendingOp slab
  /// and the scheduled closure captures only {this, slot} (fits
  /// std::function's inline buffer — no heap allocation per packet).
  /// Charges cycles and, at completion, sends `pkt` encapped toward `dst`.
  void consume_cpu_send(double cycles, net::Packet pkt,
                        const tables::Location& dst, telemetry::Stage stage);
  /// Charges cycles and, at completion, delivers `pkt` to the VM side,
  /// bumping *adapter_count (a node-stable pointer into
  /// adapter_deliveries_).
  void consume_cpu_deliver(double cycles, net::Packet pkt,
                           tables::VnicId vid, std::uint64_t* adapter_count,
                           telemetry::Stage stage);
  /// Charges cycles with no completion work (verdict-drop paths).
  void consume_cpu_noop(double cycles, telemetry::Stage stage);

  /// Flight-recorder helpers; single pointer test when telemetry is off.
  void record_cpu(telemetry::EventKind kind, telemetry::Stage stage,
                  const net::Packet* pkt, double cycles,
                  common::TimePoint done);
  void record_mode(tables::VnicId vnic, VnicMode from, VnicMode to);

  std::uint32_t alloc_op_slot();
  void run_op(std::uint32_t slot);
  /// EventLoop raw-callback shim for the per-packet CPU-completion events;
  /// avoids a std::function per switched packet.
  static void run_op_thunk(void* self, std::uint64_t slot) {
    static_cast<VSwitch*>(self)->run_op(static_cast<std::uint32_t>(slot));
  }

  /// Session-entry creation with pool accounting (key + state bytes); null
  /// when fast-path memory is full.
  flow::SessionEntry* get_or_create_session(const flow::SessionKey& key);

  /// FE flow-cache entry creation with pool accounting (key + pre-actions).
  flow::SessionEntry* get_or_create_cache_entry(FrontendInstance& fe,
                                                const flow::SessionKey& key);

  /// Ensures `entry` holds fresh pre-actions for `tx_ft` under `rules`,
  /// running the slow-path chain on miss/staleness (adding its cycles to
  /// *cycles and reserving cache memory). Returns the pre-actions to use —
  /// `fallback` when caching memory is unavailable.
  const flow::PreActions& ensure_pre_actions(flow::SessionEntry& entry,
                                             const tables::RuleTableSet& rules,
                                             const net::FiveTuple& tx_ft,
                                             double* cycles,
                                             flow::PreActions& fallback);

  /// Resolves the underlay location serving an overlay address, hashing
  /// across FEs for offloaded placements.
  std::optional<tables::Location> resolve_dst(const tables::OverlayAddr& addr,
                                              const net::FiveTuple& ft);

  void send_encapped(net::Packet pkt, const tables::Location& dst);

  /// Sends a copy of `pkt` to the mirror collector named in the pre-action.
  void mirror_copy(const net::Packet& pkt, const flow::DirPreAction& pre);

  /// Releases the session-pool bytes an evicted/erased entry had reserved.
  void release_session_entry(const flow::SessionEntry& entry);

  VSwitchConfig config_;
  sim::EventLoop& loop_;
  sim::Network& network_;
  CpuModel cpu_;
  MemoryPool rule_pool_;
  MemoryPool session_pool_;
  LearnedVnicMap learned_map_;

  std::unordered_map<tables::VnicId, Vnic> vnics_;
  std::unordered_map<tables::VnicId, FrontendInstance> frontends_;
  /// Single per-packet dispatch point for plain overlay packets: one lookup
  /// resolves both "is there an FE for this address" and "is it a hosted
  /// vNIC". Pointers are node-stable (unordered_map values never move).
  struct AddrDispatch {
    FrontendInstance* fe = nullptr;
    Vnic* vnic = nullptr;
  };
  std::unordered_map<tables::OverlayAddr, AddrDispatch,
                     tables::OverlayAddrHash>
      dispatch_by_addr_;
  /// Elephant-flow pins: (vnic, canonical tuple) → dedicated FE (§7.5).
  std::unordered_map<flow::SessionKey, tables::Location, flow::SessionKeyHash>
      pinned_flows_;
  std::uint64_t fe_hash_seed_ = 0;
  const policy::FeSelectionPolicy* fe_policy_ =
      &policy::policy_for(policy::PolicyKind::kStaticHash);
  policy::FeWeightBook fe_weights_;
  LinkProbeReplyFn link_probe_reply_;
  std::unordered_map<tables::VnicId, std::uint64_t> adapter_deliveries_;

  flow::SessionTable sessions_;  // unified store; see sessions() docs

  /// Deferred-work slab for the CPU model: packets waiting out their cycle
  /// cost live here, addressed by slot (see consume_cpu_send/_deliver).
  enum class OpKind : std::uint8_t { kSend = 0, kDeliver = 1 };
  struct PendingOp {
    net::Packet pkt;
    tables::Location dst;
    std::uint64_t* adapter_count = nullptr;
    common::TimePoint done = 0;  // CPU completion time (burst mode)
    tables::VnicId vid = 0;
    OpKind kind = OpKind::kSend;
    std::uint8_t stage = 0;  // telemetry::Stage of the charging site
  };
  std::vector<PendingOp> op_slab_;
  std::vector<std::uint32_t> op_free_;

  /// Max CPU completions retired per drain event in burst mode.
  static constexpr std::size_t kCpuBurst = 32;

  /// Schedules run_op(slot) at `done`: its own event (exact mode) or via
  /// the completion queue (burst mode). The CPU model is a FIFO queue
  /// server, so done times are monotone and the queue drains in completion
  /// order.
  void schedule_op(std::uint32_t slot, common::TimePoint done);
  void op_drain();
  static void op_drain_thunk(void* self, std::uint64_t) {
    static_cast<VSwitch*>(self)->op_drain();
  }
  void opq_push(std::uint32_t slot);
  std::uint32_t opq_front() const { return op_queue_[opq_head_]; }

  /// Burst-mode completion queue: a circular FIFO of PendingOp slots
  /// (power-of-two capacity), plus whether a drain event is outstanding.
  std::vector<std::uint32_t> op_queue_;
  std::size_t opq_head_ = 0;
  std::size_t opq_count_ = 0;
  bool opq_drain_scheduled_ = false;

  VmDeliveryFn vm_delivery_;
  common::Counter counters_;
  telemetry::Hub* telemetry_ = nullptr;
  /// Interned metric ids, resolved once in set_telemetry (0xffffffff = none).
  std::uint32_t lat_local_rx_us_ = 0xffffffffu;
  std::uint32_t lat_be_rx_us_ = 0xffffffffu;
  std::uint64_t slow_lookups_ = 0;
  std::uint64_t fast_hits_ = 0;
  std::uint64_t notify_sent_ = 0;
  std::uint64_t vm_deliveries_ = 0;
  std::uint64_t mirrored_ = 0;
  double fe_cycles_ = 0.0;
  double local_cycles_ = 0.0;
  bool aging_started_ = false;
};

}  // namespace nezha::vswitch
