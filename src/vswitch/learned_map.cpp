#include "src/vswitch/learned_map.h"

namespace nezha::vswitch {

const tables::VnicServerMap::Entry* LearnedVnicMap::resolve(
    const tables::OverlayAddr& addr, common::TimePoint now) {
  auto it = cache_.find(addr);
  if (it != cache_.end() && now - it->second.learned_at < interval_) {
    return &it->second.entry;
  }
  const tables::VnicServerMap::Entry* fresh = gateway_.lookup(addr);
  ++fetches_;
  if (fresh == nullptr) {
    cache_.erase(addr);
    return nullptr;
  }
  auto& learned = cache_[addr];
  learned.entry = *fresh;
  learned.learned_at = now;
  return &learned.entry;
}

void LearnedVnicMap::invalidate(const tables::OverlayAddr& addr) {
  cache_.erase(addr);
}

}  // namespace nezha::vswitch
