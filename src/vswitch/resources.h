// SmartNIC vSwitch resource models: CPU (a cycle-budget queue server) and
// memory pools. These are the two resources whose exhaustion the paper
// analyzes (§2.2.2): CPU limits CPS via slow-path lookups, memory limits
// #concurrent flows (fast path) and #vNICs (slow path).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/time.h"

namespace nezha::vswitch {

struct CpuConfig {
  int cores = 8;
  double hz_per_core = 2.5e9;
  /// Packets whose queueing delay would exceed this are dropped — the
  /// overloaded-vSwitch behaviour behind Fig 12's latency cliff and the
  /// paper's note that excess packets "would otherwise be completely
  /// discarded" (§6.3.4).
  common::Duration max_queue_delay = common::milliseconds(2);
};

/// Single-queue CPU model. Work arrives as cycle costs; the CPU serves it
/// FIFO at cores*hz cycles per second. consume() reports whether the packet
/// was accepted and when its processing completes.
class CpuModel {
 public:
  explicit CpuModel(CpuConfig config = {});

  double cycles_per_second() const { return rate_; }
  const CpuConfig& config() const { return config_; }

  struct Outcome {
    bool accepted = false;
    common::TimePoint done = 0;        // completion time when accepted
    common::Duration queue_delay = 0;  // time spent waiting before service
  };

  /// Requests `cycles` of processing starting at `now` (now must be
  /// monotonically non-decreasing across calls, which the event loop
  /// guarantees).
  Outcome consume(double cycles, common::TimePoint now);

  /// Total busy time accumulated up to virtual time `now` (now must be the
  /// current simulation time). Utilization over an interval is computed by
  /// a UtilizationSampler from snapshots of this integral.
  common::Duration busy_integral(common::TimePoint now) const;

  /// Instantaneous backlog (how far busy_until is ahead of now).
  common::Duration backlog(common::TimePoint now) const {
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  CpuConfig config_;
  double rate_;  // cycles per second (all cores)
  common::TimePoint busy_until_ = 0;
  common::Duration cumulative_busy_ = 0;  // closed busy runs
  common::TimePoint frontier_ = 0;        // start of the current busy run
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Computes exact utilization over successive sampling intervals by
/// snapshotting the CPU busy integral at each boundary.
class UtilizationSampler {
 public:
  /// Utilization of [last sample time, now); advances the checkpoint.
  double sample(const CpuModel& cpu, common::TimePoint now);

 private:
  common::TimePoint last_t_ = 0;
  common::Duration last_busy_ = 0;
};

/// A byte-budget memory pool with explicit reserve/release.
class MemoryPool {
 public:
  explicit MemoryPool(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t free() const { return capacity_ - used_; }
  double utilization() const {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(used_) /
                                static_cast<double>(capacity_);
  }

  bool reserve(std::size_t bytes) {
    if (used_ + bytes > capacity_) {
      ++failures_;
      return false;
    }
    used_ += bytes;
    return true;
  }

  void release(std::size_t bytes) { used_ -= bytes > used_ ? used_ : bytes; }

  std::uint64_t failures() const { return failures_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace nezha::vswitch
