// Interned datapath counter ids. The vSwitch registers kCounterNames with
// its common::Counter once at construction; datapath increments are then a
// plain array increment (no string hashing or comparison per packet). The
// string API (counters().get("drop.acl")) keeps working — it resolves
// against this table too.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace nezha::vswitch {

enum class Ctr : std::size_t {
  kDropCpuOverload = 0,
  kDropSessionFull,
  kDropFeCacheFull,
  kCacheInsertFail,
  kDropNoVnic,
  kDropAcl,
  kDropQos,
  kDropNoRoute,
  kDropNoFrontend,
  kDropUnroutable,
  kDropMisdelivered,
  kDropBadCarrier,
  kDropStaleRoute,
  kNotifyReceived,
  kProbeReplied,
  kCount,
};

inline constexpr std::array<std::string_view,
                            static_cast<std::size_t>(Ctr::kCount)>
    kCounterNames = {
        "drop.cpu_overload", "drop.session_full", "drop.fe_cache_full",
        "cache_insert_fail", "drop.no_vnic",      "drop.acl",
        "drop.qos",          "drop.no_route",     "drop.no_frontend",
        "drop.unroutable",   "drop.misdelivered", "drop.bad_carrier",
        "drop.stale_route",  "notify_received",   "probe_replied",
};

}  // namespace nezha::vswitch
