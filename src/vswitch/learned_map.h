// On-demand learned view of the gateway's vNIC-server table (§4.2.1).
//
// The global table is too large to push everywhere, so each vSwitch learns
// entries on demand and refreshes them at the learning interval (200ms in
// the paper). A sender can therefore use a stale placement for up to one
// interval after an offload/fallback/migration re-points a vNIC — the
// window Nezha's dual-running stage covers.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "src/common/time.h"
#include "src/tables/vnic_server_map.h"

namespace nezha::vswitch {

class LearnedVnicMap {
 public:
  LearnedVnicMap(const tables::VnicServerMap& gateway,
                 common::Duration learning_interval)
      : gateway_(gateway), interval_(learning_interval) {}

  /// Resolves a vNIC placement. Returns the cached entry while it is fresh
  /// (< learning interval old) even if the gateway has newer data — that is
  /// the point: staleness is bounded, not zero. Returns nullptr when the
  /// gateway itself has no entry.
  const tables::VnicServerMap::Entry* resolve(const tables::OverlayAddr& addr,
                                              common::TimePoint now);

  /// Drops the cached entry so the next resolve re-learns immediately.
  void invalidate(const tables::OverlayAddr& addr);

  std::size_t size() const { return cache_.size(); }
  std::uint64_t gateway_fetches() const { return fetches_; }

 private:
  struct Learned {
    tables::VnicServerMap::Entry entry;
    common::TimePoint learned_at = 0;
  };

  const tables::VnicServerMap& gateway_;
  common::Duration interval_;
  std::unordered_map<tables::OverlayAddr, Learned, tables::OverlayAddrHash>
      cache_;
  std::uint64_t fetches_ = 0;
};

}  // namespace nezha::vswitch
