// vNIC: a tenant network interface hosted by a vSwitch, with its own rule
// tables for isolation (§2.1). Under Nezha a vNIC progresses through offload
// modes: local → dual-running → offloaded (BE), and back via fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/tables/rule_set.h"
#include "src/tables/vnic_server_map.h"

namespace nezha::vswitch {

/// Offload lifecycle of a vNIC on its home (BE) vSwitch.
enum class VnicMode : std::uint8_t {
  /// All processing local; rule tables and cached flows on this vSwitch.
  kLocal = 0,
  /// Offload dual-running stage (§4.2.1): FEs are live, but local tables
  /// are retained until every sender has learned the new placement.
  kOffloadDualRunning = 1,
  /// Final stage: stateless tables live only on the FEs; this vSwitch keeps
  /// just the states and the FE location config (it is a pure BE).
  kOffloaded = 2,
  /// Fallback dual-running stage (§4.2.2): local tables restored, FEs still
  /// serve until senders learn the BE address again.
  kFallbackDualRunning = 3,
};

std::string to_string(VnicMode mode);

/// Fixed per-vNIC BE metadata retained locally after offload: FE locations
/// plus essential config (§6.2.1 measures this at ~2KB, the denominator of
/// the theoretical 1000x #vNIC gain).
inline constexpr std::size_t kBackendMetadataBytes = 2 * 1024;

struct VnicConfig {
  tables::VnicId id = 0;
  tables::OverlayAddr addr;                 // tenant-facing identity
  tables::RuleSetProfile profile;           // slow-path shape
  /// Child vNIC support (§7.4): children share the parent's I/O adapter and
  /// are demultiplexed by tag; they still own full rule tables.
  std::optional<tables::VnicId> parent;
  std::uint16_t vlan_tag = 0;
};

class Vnic {
 public:
  explicit Vnic(VnicConfig config)
      : config_(config),
        rules_(std::make_unique<tables::RuleTableSet>(config.profile)) {}

  tables::VnicId id() const { return config_.id; }
  const tables::OverlayAddr& addr() const { return config_.addr; }
  const VnicConfig& config() const { return config_; }

  VnicMode mode() const { return mode_; }
  void set_mode(VnicMode mode) { mode_ = mode; }
  bool has_local_tables() const { return rules_ != nullptr; }

  /// Stateful decap (§5.2): record the overlay source of the first RX
  /// packet so TX responses return to the LB. Kept here (not in a vSwitch
  /// side map) so the datapath reads it with the vNIC it already holds.
  bool stateful_decap() const { return stateful_decap_; }
  void set_stateful_decap(bool on) { stateful_decap_ = on; }

  /// Rule tables; null once the vNIC reaches the offloaded final stage.
  tables::RuleTableSet* rules() { return rules_.get(); }
  const tables::RuleTableSet* rules() const { return rules_.get(); }

  /// Drops the local tables (offload final stage); returns bytes released.
  std::size_t release_local_tables() {
    const std::size_t bytes = rules_ ? rules_->memory_bytes() : 0;
    rules_.reset();
    return bytes;
  }

  /// Restores local tables (fallback); returns bytes now consumed.
  std::size_t restore_local_tables() {
    if (!rules_) rules_ = std::make_unique<tables::RuleTableSet>(config_.profile);
    return rules_->memory_bytes();
  }

  // --- Nezha BE configuration ---
  const std::vector<tables::Location>& fe_locations() const {
    return fe_locations_;
  }
  void set_fe_locations(std::vector<tables::Location> locations) {
    fe_locations_ = std::move(locations);
  }

  /// Deadline until which retained local tables must keep serving stale
  /// senders (dual-running stage; learning interval + RTT, §4.2.1).
  common::TimePoint dual_running_until() const { return dual_running_until_; }
  void set_dual_running_until(common::TimePoint t) { dual_running_until_ = t; }

  /// Slot of this vNIC's adapter delivery counter, resolved once by the
  /// hosting vSwitch at creation (the counter map's nodes are stable) so the
  /// per-packet delivery path does not hash the adapter id.
  std::uint64_t* delivery_counter() const { return delivery_counter_; }
  void set_delivery_counter(std::uint64_t* slot) { delivery_counter_ = slot; }

 private:
  VnicConfig config_;
  VnicMode mode_ = VnicMode::kLocal;
  bool stateful_decap_ = false;
  std::unique_ptr<tables::RuleTableSet> rules_;
  std::vector<tables::Location> fe_locations_;
  common::TimePoint dual_running_until_ = 0;
  std::uint64_t* delivery_counter_ = nullptr;
};

}  // namespace nezha::vswitch
